"""Calibrating the simulated machine's cost model to real hardware.

The :class:`~repro.parallel.backends.simulated.CostModel` defaults are
anchored to the paper's hardware class (see :mod:`repro.parallel.cost`).
:func:`calibrate_cost_model` instead *measures* this machine: it times
a tight scalar relaxation loop (the Step-2 inner loop of Algorithm 1,
Python semantics and all) and returns a cost model whose
``seconds_per_unit`` reflects the host.  Useful when the virtual
milliseconds should be comparable to local wall-clock runs rather than
to the paper's C++ numbers.

The *shape* of every scalability figure is invariant to this scale —
only the axis labels move — which is why the benchmarks keep the
paper-class defaults.
"""

from __future__ import annotations

import time
import numpy as np

from repro.parallel.backends.simulated import CostModel

__all__ = ["measure_seconds_per_relaxation", "calibrate_cost_model"]


def measure_seconds_per_relaxation(
    iterations: int = 200_000, seed: int = 0
) -> float:
    """Median seconds per edge relaxation of a Python inner loop.

    Runs three repetitions of ``iterations`` scalar relaxations against
    numpy-backed distance storage (matching the kernels' access
    pattern) and returns the median per-relaxation time.
    """
    rng = np.random.default_rng(seed)
    n = 1024
    dist = rng.uniform(0, 100, size=n)
    srcs = rng.integers(0, n, size=iterations)
    dsts = rng.integers(0, n, size=iterations)
    ws = rng.uniform(0, 10, size=iterations)

    samples = []
    for _ in range(3):
        d = dist.copy()
        t0 = time.perf_counter()
        for i in range(iterations):
            u = srcs[i]
            v = dsts[i]
            nd = d[u] + ws[i]
            if nd < d[v]:
                d[v] = nd
        samples.append((time.perf_counter() - t0) / iterations)
    samples.sort()
    return samples[1]


def calibrate_cost_model(
    iterations: int = 200_000, seed: int = 0
) -> CostModel:
    """A :class:`CostModel` whose unit cost is measured on this host.

    Overheads (task dispatch, chunk grab, barrier) are scaled by the
    same host/paper ratio so the model stays self-consistent.
    """
    measured = measure_seconds_per_relaxation(iterations, seed)
    default = CostModel()
    scale = measured / default.seconds_per_unit
    return CostModel(
        seconds_per_unit=measured,
        task_overhead=default.task_overhead * scale,
        chunk_overhead=default.chunk_overhead * scale,
        barrier_base=default.barrier_base * scale,
        barrier_per_log_thread=default.barrier_per_log_thread * scale,
    )
