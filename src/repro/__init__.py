"""repro — parallel single/multi-objective shortest-path updates in dynamic networks.

A from-scratch Python reproduction of:

    Arindam Khanda, S M Shovan, Sajal K. Das.
    "A Parallel Algorithm for Updating a Multi-objective Shortest Path
    in Large Dynamic Networks." SC-W 2023.
    https://doi.org/10.1145/3624062.3625134

Public API highlights
---------------------
- :class:`repro.graph.DiGraph` / :class:`repro.graph.CSRGraph` — dynamic
  multi-objective graphs and frozen CSR snapshots.
- :func:`repro.core.sosp_update` — Algorithm 1: parallel incremental
  SSSP update with destination grouping.
- :func:`repro.core.mosp_update` — Algorithm 2: single-MOSP heuristic
  update via per-objective tree updates + ensemble graph.
- :mod:`repro.parallel` — pluggable execution engines (serial, threads,
  processes, simulated parallel machine).
- :mod:`repro.sssp` / :mod:`repro.mosp` — from-scratch baselines
  (Dijkstra, Bellman-Ford, Δ-stepping, Martins' Pareto enumeration).
"""

from repro._version import __version__
from repro.graph import CSRGraph, DiGraph

__all__ = [
    "__version__",
    "DiGraph",
    "CSRGraph",
]
