"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by this library derive from :class:`ReproError`
so callers can catch library failures with a single ``except`` clause
while still distinguishing the failure class when they need to.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "VertexError",
    "EdgeError",
    "WeightError",
    "EngineError",
    "UnknownEngineError",
    "OwnershipViolation",
    "WriteSetViolation",
    "AlgorithmError",
    "TreeInvariantError",
    "NotReachableError",
    "BatchError",
    "IOFormatError",
    "BenchmarkError",
]


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class GraphError(ReproError):
    """A graph-structure operation failed (bad topology or state)."""


class VertexError(GraphError):
    """A vertex id is out of range or otherwise invalid."""

    def __init__(self, vertex: int, n: int, context: str = "") -> None:
        msg = f"vertex {vertex} out of range [0, {n})"
        if context:
            msg = f"{context}: {msg}"
        super().__init__(msg)
        self.vertex = vertex
        self.n = n
        self.context = context

    def __reduce__(
        self,
    ) -> "tuple[type[VertexError], tuple[int, int, str]]":
        # rich __init__ signatures need explicit pickle support: the
        # process engine ships worker exceptions across processes
        return type(self), (self.vertex, self.n, self.context)


class EdgeError(GraphError):
    """An edge is missing, duplicated, or malformed."""


class WeightError(GraphError):
    """An edge weight (or weight vector) is invalid.

    All algorithms in this package require finite, non-negative edge
    weights; the number of objectives must be consistent across the
    whole graph.
    """


class EngineError(ReproError):
    """A parallel engine was misconfigured or misused."""


class UnknownEngineError(EngineError):
    """``resolve_engine`` was asked for a backend name not in its registry.

    Carries the rejected ``name`` and the ``valid`` registry names so
    callers (the CLI, config loaders) can render a helpful message
    without parsing the string.
    """

    def __init__(self, name: str, valid: "tuple[str, ...]") -> None:
        super().__init__(
            f"unknown engine {name!r}; expected one of {sorted(valid)}"
        )
        self.name = name
        self.valid = tuple(valid)

    def __reduce__(
        self,
    ) -> "tuple[type[UnknownEngineError], tuple[str, tuple[str, ...]]]":
        return type(self), (self.name, self.valid)


class OwnershipViolation(EngineError):
    """Two tasks wrote to the same vertex inside one superstep.

    Raised only when ownership checking is enabled (debug mode); the
    paper's grouping technique guarantees this never happens for
    correct usage of :func:`repro.core.sosp_update.sosp_update`.
    """

    def __init__(self, vertex: int, first_task: int, second_task: int) -> None:
        super().__init__(
            f"vertex {vertex} written by task {first_task} and task "
            f"{second_task} in the same superstep (race condition)"
        )
        self.vertex = vertex
        self.first_task = first_task
        self.second_task = second_task

    def __reduce__(
        self,
    ) -> "tuple[type[OwnershipViolation], tuple[int, int, int]]":
        return type(self), (self.vertex, self.first_task, self.second_task)


class WriteSetViolation(EngineError):
    """A slab dispatch mutated arrays outside its declared write-set.

    ``SlabTask.writes`` is a contract: crash rollback snapshots exactly
    the declared arrays, so an undeclared mutation survives a rollback
    and silently corrupts recovery.  :class:`repro.parallel.checked.
    CheckedEngine` raises this when either the static analyzer's
    inferred write-set for ``task.ref`` exceeds the declaration, or a
    before/after content digest shows an undeclared planted array
    changed during the dispatch.
    """

    def __init__(self, ref: str, arrays: "tuple[str, ...]", how: str) -> None:
        super().__init__(
            f"slab kernel {ref!r} mutated undeclared array(s) "
            f"{', '.join(sorted(arrays))} ({how}); declare them in "
            "SlabTask(writes=...) so rollback snapshots cover them"
        )
        self.ref = ref
        self.arrays = tuple(arrays)
        self.how = how

    def __reduce__(
        self,
    ) -> "tuple[type[WriteSetViolation], tuple[str, tuple[str, ...], str]]":
        return type(self), (self.ref, self.arrays, self.how)


class AlgorithmError(ReproError):
    """An algorithm received inputs violating its preconditions."""


class TreeInvariantError(AlgorithmError):
    """An SOSP tree failed certification against its graph."""


class NotReachableError(AlgorithmError):
    """A requested destination is not reachable from the source."""

    def __init__(self, source: int, destination: int) -> None:
        super().__init__(
            f"vertex {destination} is not reachable from source {source}"
        )
        self.source = source
        self.destination = destination

    def __reduce__(
        self,
    ) -> "tuple[type[NotReachableError], tuple[int, int]]":
        return type(self), (self.source, self.destination)


class BatchError(ReproError):
    """A change batch is malformed (bad endpoints, weights, or flags)."""


class IOFormatError(ReproError):
    """A graph file could not be parsed."""


class BenchmarkError(ReproError):
    """A benchmark harness configuration is invalid."""
