"""Multi-timestep change streams: the evolving network ``G_t``.

A :class:`ChangeStream` lazily yields one :class:`ChangeBatch` per
time step, letting examples and benchmarks drive the update algorithms
through many consecutive topology changes — the "rapidly growing large
networks" setting of the paper's §3.2.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

import numpy as np

from repro.errors import BatchError
from repro.dynamic.batch_gen import random_insert_batch, random_mixed_batch
from repro.dynamic.changes import ChangeBatch
from repro.graph.digraph import DiGraph

__all__ = ["ChangeStream"]


class ChangeStream:
    """A seeded sequence of change batches over a (mutating) graph.

    Parameters
    ----------
    graph:
        The graph the stream evolves.  Each yielded batch has *already
        been applied* to it by :meth:`play` (the common consumption
        pattern); :meth:`batches` yields without applying for callers
        that manage application themselves.
    batch_size:
        Records per time step.
    steps:
        Number of time steps.
    insert_fraction:
        1.0 = incremental-only (the paper's main setting); < 1.0 mixes
        deletions in (the future-work extension).
    weight_change_fraction:
        Fraction of each batch that re-weights live edges (0.0 by
        default; requires ``insert_fraction + weight_change_fraction
        <= 1``).  Together with ``insert_fraction < 1`` this drives
        the fully dynamic mixed pipeline.
    seed:
        RNG seed; the stream is fully deterministic.

    Examples
    --------
    >>> from repro.graph import grid_road
    >>> g = grid_road(4, 4, seed=0)
    >>> stream = ChangeStream(g, batch_size=5, steps=3, seed=1)
    >>> sum(b.num_changes for b in stream.batches())
    15
    """

    def __init__(
        self,
        graph: DiGraph,
        batch_size: int,
        steps: int,
        insert_fraction: float = 1.0,
        seed=0,
        low: float = 1.0,
        high: float = 10.0,
        weight_change_fraction: float = 0.0,
    ) -> None:
        if steps < 0:
            raise BatchError("steps must be >= 0")
        if batch_size < 0:
            raise BatchError("batch_size must be >= 0")
        self.graph = graph
        self.batch_size = batch_size
        self.steps = steps
        self.insert_fraction = insert_fraction
        self.weight_change_fraction = weight_change_fraction
        self.low = low
        self.high = high
        self._rng = (
            seed if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        self._pending: Optional[ChangeBatch] = None

    def _make_batch(self) -> ChangeBatch:
        if (
            self.insert_fraction >= 1.0
            and self.weight_change_fraction <= 0.0
        ):
            return random_insert_batch(
                self.graph, self.batch_size, seed=self._rng,
                low=self.low, high=self.high,
            )
        return random_mixed_batch(
            self.graph, self.batch_size,
            insert_fraction=self.insert_fraction, seed=self._rng,
            low=self.low, high=self.high,
            weight_change_fraction=self.weight_change_fraction,
        )

    def batches(self) -> Iterator[ChangeBatch]:
        """Yield ``steps`` batches *without* applying them."""
        for _ in range(self.steps):
            yield self._make_batch()

    @property
    def pending(self) -> Optional[ChangeBatch]:
        """The batch :meth:`play` applied but whose consumer never
        finished, or ``None`` when graph and consumer agree.

        ``play`` mutates the graph *before* invoking ``on_batch`` (the
        consumer needs the post-change topology), so a callback that
        raises leaves the graph exactly one batch ahead of the batches
        the consumer processed.  That batch is parked here instead of
        being silently lost.
        """
        return self._pending

    def resync(self) -> Optional[ChangeBatch]:
        """Return-and-clear the :attr:`pending` batch.

        After a consumer failure, feed the returned batch through the
        update path (or rebuild the tree from the graph) before calling
        :meth:`play` again; ``play`` refuses to run while a pending
        batch is unconsumed, so a crashed consumer cannot quietly skip
        the changes already applied to the graph.
        """
        batch, self._pending = self._pending, None
        return batch

    def play(
        self,
        on_batch: Optional[Callable[[int, ChangeBatch], None]] = None,
    ) -> int:
        """Generate, apply, and (optionally) report every batch.

        ``on_batch(step_index, batch)`` is called *after* the batch has
        been applied to the graph — the point at which an update
        algorithm would run.  Returns the number of steps played.

        If ``on_batch`` raises, the already-applied batch stays
        available via :attr:`pending` / :meth:`resync` so the consumer
        can catch the graph up; until it is resynced, ``play`` raises
        rather than drift another batch ahead.
        """
        if self._pending is not None:
            raise BatchError(
                "play() called with an unconsumed pending batch: the "
                "graph is ahead of the last consumer; call resync() "
                "and process the returned batch first"
            )
        for t in range(self.steps):
            batch = self._make_batch()
            batch.apply_to(self.graph)
            self._pending = batch
            if on_batch is not None:
                on_batch(t, batch)
            self._pending = None
        return self.steps
