"""Change batches: the ``ΔE`` of the paper.

The paper stores changed edges as an array of structures, each holding
"the endpoints of an edge, edge weight, and a flag to indicate
insertion/deletion status" (§4).  :class:`ChangeBatch` is the
structure-of-arrays equivalent: ``src``/``dst`` int64 arrays, an
``(b, k)`` weight matrix, and a boolean ``insert_mask``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import BatchError
from repro.graph.digraph import DiGraph
from repro.types import DIST_DTYPE, VERTEX_DTYPE, FloatArray, IntArray

__all__ = ["ChangeBatch"]


class ChangeBatch:
    """A batch of edge changes applied between two time steps.

    Parameters
    ----------
    src, dst:
        Edge endpoints, int64 arrays of equal length ``b``.
    weights:
        ``(b, k)`` weight vectors (ignored for deletion records, kept
        zero by the constructors).
    insert_mask:
        ``True`` for insertion records, ``False`` for deletions.

    Examples
    --------
    >>> batch = ChangeBatch.insertions([(0, 1, (2.0,)), (1, 2, (3.0,))])
    >>> batch.num_changes, batch.num_insertions, batch.num_deletions
    (2, 2, 0)
    """

    __slots__ = ("src", "dst", "weights", "insert_mask")

    def __init__(
        self,
        src: IntArray,
        dst: IntArray,
        weights: FloatArray,
        insert_mask,
    ) -> None:
        self.src = np.ascontiguousarray(src, dtype=VERTEX_DTYPE)
        self.dst = np.ascontiguousarray(dst, dtype=VERTEX_DTYPE)
        self.weights = np.ascontiguousarray(weights, dtype=DIST_DTYPE)
        if self.weights.ndim == 1:
            self.weights = self.weights.reshape(-1, 1)
        self.insert_mask = np.ascontiguousarray(insert_mask, dtype=bool)
        b = self.src.shape[0]
        if (
            self.dst.shape[0] != b
            or self.weights.shape[0] != b
            or self.insert_mask.shape[0] != b
        ):
            raise BatchError(
                f"batch arrays disagree on length: src={b}, "
                f"dst={self.dst.shape[0]}, weights={self.weights.shape[0]}, "
                f"mask={self.insert_mask.shape[0]}"
            )
        if b:
            if self.src.min() < 0 or self.dst.min() < 0:
                raise BatchError("negative vertex ids in batch")
            ins_w = self.weights[self.insert_mask]
            if ins_w.size and (
                not np.all(np.isfinite(ins_w)) or np.any(ins_w < 0)
            ):
                raise BatchError("insertion weights must be finite and >= 0")

    # ------------------------------------------------------------------
    @classmethod
    def insertions(
        cls, edges: Iterable[Tuple[int, int, Sequence[float]]]
    ) -> "ChangeBatch":
        """Build an insertion-only batch from ``(u, v, weight_vector)``
        tuples (scalar weights accepted for ``k=1``)."""
        rows = list(edges)
        if not rows:
            return cls(
                np.empty(0, VERTEX_DTYPE),
                np.empty(0, VERTEX_DTYPE),
                np.empty((0, 1), DIST_DTYPE),
                np.empty(0, bool),
            )
        src = [r[0] for r in rows]
        dst = [r[1] for r in rows]
        ws = [
            [float(r[2])] if np.isscalar(r[2]) else list(r[2]) for r in rows
        ]
        arity = {len(w) for w in ws}
        if len(arity) != 1:
            raise BatchError(f"inconsistent weight arity in batch: {arity}")
        return cls(src, dst, np.asarray(ws), np.ones(len(rows), bool))

    @classmethod
    def deletions(cls, pairs: Iterable[Tuple[int, int]], k: int = 1) -> "ChangeBatch":
        """Build a deletion-only batch from ``(u, v)`` pairs."""
        rows = list(pairs)
        b = len(rows)
        return cls(
            [r[0] for r in rows] if rows else np.empty(0, VERTEX_DTYPE),
            [r[1] for r in rows] if rows else np.empty(0, VERTEX_DTYPE),
            np.zeros((b, k), DIST_DTYPE),
            np.zeros(b, bool),
        )

    @classmethod
    def concat(cls, *batches: "ChangeBatch") -> "ChangeBatch":
        """Concatenate several batches (same ``k``) in order."""
        if not batches:
            raise BatchError("concat needs at least one batch")
        ks = {b.num_objectives for b in batches}
        if len(ks) != 1:
            raise BatchError(f"cannot concat batches with k in {ks}")
        return cls(
            np.concatenate([b.src for b in batches]),
            np.concatenate([b.dst for b in batches]),
            np.vstack([b.weights for b in batches]),
            np.concatenate([b.insert_mask for b in batches]),
        )

    # ------------------------------------------------------------------
    @property
    def num_changes(self) -> int:
        """Total number of change records ``|ΔE|``."""
        return int(self.src.shape[0])

    @property
    def num_insertions(self) -> int:
        """Number of insertion records ``|Ins|``."""
        return int(self.insert_mask.sum())

    @property
    def num_deletions(self) -> int:
        """Number of deletion records ``|Del|``."""
        return self.num_changes - self.num_insertions

    @property
    def num_objectives(self) -> int:
        """Weight-vector arity ``k``."""
        return int(self.weights.shape[1])

    def __len__(self) -> int:
        return self.num_changes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ChangeBatch(ins={self.num_insertions}, "
            f"del={self.num_deletions}, k={self.num_objectives})"
        )

    # ------------------------------------------------------------------
    def insert_records(self) -> Tuple[IntArray, IntArray, FloatArray]:
        """``(src, dst, weights)`` restricted to insertion records."""
        m = self.insert_mask
        return self.src[m], self.dst[m], self.weights[m]

    def delete_records(self) -> Tuple[IntArray, IntArray]:
        """``(src, dst)`` restricted to deletion records."""
        m = ~self.insert_mask
        return self.src[m], self.dst[m]

    def only_insertions(self) -> "ChangeBatch":
        """The insertion-only sub-batch."""
        m = self.insert_mask
        return ChangeBatch(self.src[m], self.dst[m], self.weights[m],
                           np.ones(int(m.sum()), bool))

    def only_deletions(self) -> "ChangeBatch":
        """The deletion-only sub-batch."""
        m = ~self.insert_mask
        return ChangeBatch(self.src[m], self.dst[m], self.weights[m],
                           np.zeros(int(m.sum()), bool))

    # ------------------------------------------------------------------
    def apply_to(self, g: DiGraph) -> List[int]:
        """Apply the batch to ``g`` in record order.

        Insertions add edges (returning their edge ids); deletion
        records remove one live matching edge each and are skipped with
        no effect if no live edge matches (idempotent semantics for
        randomly generated batches).
        """
        if self.num_changes and (
            int(self.src.max(initial=0)) >= g.num_vertices
            or int(self.dst.max(initial=0)) >= g.num_vertices
        ):
            raise BatchError(
                "batch references vertices outside the graph; "
                "grow the graph first with add_vertices()"
            )
        if self.num_insertions and self.num_objectives != g.num_objectives:
            raise BatchError(
                f"batch k={self.num_objectives} != graph k={g.num_objectives}"
            )
        eids: List[int] = []
        for i in range(self.num_changes):
            u, v = int(self.src[i]), int(self.dst[i])
            if self.insert_mask[i]:
                eids.append(g.add_edge(u, v, self.weights[i]))
            else:
                if g.has_edge(u, v):
                    g.remove_edge(u, v)
        return eids
