"""Change batches: the ``ΔE`` of the paper.

The paper stores changed edges as an array of structures, each holding
"the endpoints of an edge, edge weight, and a flag to indicate
insertion/deletion status" (§4).  :class:`ChangeBatch` is the
structure-of-arrays equivalent: ``src``/``dst`` int64 arrays, a
``(b, k)`` weight matrix, and a per-record ``kind`` code.

Three record kinds exist (the fully dynamic model of SSSP-Del):

- ``KIND_INSERT`` — add a new edge with the record's weight vector,
- ``KIND_DELETE`` — remove one live matching edge (weights ignored),
- ``KIND_WEIGHT`` — overwrite the weight vector of one live matching
  edge (a *raise* behaves like a deletion for the update algorithms, a
  *drop* like an insertion).

The historical boolean ``insert_mask`` view survives as a property, so
insert/delete-only callers are unaffected.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import BatchError
from repro.graph.digraph import DiGraph
from repro.types import DIST_DTYPE, VERTEX_DTYPE, FloatArray, IntArray

__all__ = ["ChangeBatch", "KIND_DELETE", "KIND_INSERT", "KIND_WEIGHT"]

#: Record-kind codes stored in :attr:`ChangeBatch.kind`.
KIND_DELETE = 0
KIND_INSERT = 1
KIND_WEIGHT = 2


def _min_weight_eid(g: DiGraph, u: int, v: int) -> Optional[int]:
    """The live ``(u, v)`` edge with the lexicographically smallest
    weight vector (the one :meth:`DiGraph.remove_edge` targets), or
    ``None`` when no live edge exists."""
    best: Optional[int] = None
    for vv, eid in g.out_edges(u):
        if vv == v and (
            best is None
            or tuple(g.weight(eid)) < tuple(g.weight(best))
        ):
            best = eid
    return best


class ChangeBatch:
    """A batch of edge changes applied between two time steps.

    Parameters
    ----------
    src, dst:
        Edge endpoints, int64 arrays of equal length ``b``.
    weights:
        ``(b, k)`` weight vectors (ignored for deletion records, kept
        zero by the constructors).
    kinds:
        Per-record kind: a boolean array (``True`` = insertion,
        ``False`` = deletion — the historical ``insert_mask`` form) or
        an integer array of :data:`KIND_DELETE` / :data:`KIND_INSERT` /
        :data:`KIND_WEIGHT` codes.

    Examples
    --------
    >>> batch = ChangeBatch.insertions([(0, 1, (2.0,)), (1, 2, (3.0,))])
    >>> batch.num_changes, batch.num_insertions, batch.num_deletions
    (2, 2, 0)
    """

    __slots__ = ("src", "dst", "weights", "kind")

    def __init__(
        self,
        src: IntArray,
        dst: IntArray,
        weights: FloatArray,
        kinds,
    ) -> None:
        self.src = np.ascontiguousarray(src, dtype=VERTEX_DTYPE)
        self.dst = np.ascontiguousarray(dst, dtype=VERTEX_DTYPE)
        self.weights = np.ascontiguousarray(weights, dtype=DIST_DTYPE)
        if self.weights.ndim == 1:
            self.weights = self.weights.reshape(-1, 1)
        kinds = np.asarray(kinds)
        if kinds.dtype == bool:
            kinds = np.where(kinds, KIND_INSERT, KIND_DELETE)
        self.kind = np.ascontiguousarray(kinds, dtype=np.int8)
        b = self.src.shape[0]
        if (
            self.dst.shape[0] != b
            or self.weights.shape[0] != b
            or self.kind.shape[0] != b
        ):
            raise BatchError(
                f"batch arrays disagree on length: src={b}, "
                f"dst={self.dst.shape[0]}, weights={self.weights.shape[0]}, "
                f"kinds={self.kind.shape[0]}"
            )
        if b:
            if not np.isin(self.kind, (KIND_DELETE, KIND_INSERT,
                                       KIND_WEIGHT)).all():
                raise BatchError(
                    f"unknown record kinds "
                    f"{sorted(set(self.kind.tolist()))}; expected "
                    f"{{{KIND_DELETE}, {KIND_INSERT}, {KIND_WEIGHT}}}"
                )
            if self.src.min() < 0 or self.dst.min() < 0:
                raise BatchError("negative vertex ids in batch")
            # insertion AND weight-change records carry meaningful
            # weights; both must be valid edge weights
            ww = self.weights[self.kind != KIND_DELETE]
            if ww.size and (
                not np.all(np.isfinite(ww)) or np.any(ww < 0)
            ):
                raise BatchError(
                    "insertion/weight-change weights must be finite and >= 0"
                )

    # ------------------------------------------------------------------
    @classmethod
    def insertions(
        cls, edges: Iterable[Tuple[int, int, Sequence[float]]]
    ) -> "ChangeBatch":
        """Build an insertion-only batch from ``(u, v, weight_vector)``
        tuples (scalar weights accepted for ``k=1``)."""
        src, dst, ws = cls._weighted_rows(edges)
        return cls(src, dst, ws, np.full(len(src), KIND_INSERT, np.int8))

    @classmethod
    def deletions(cls, pairs: Iterable[Tuple[int, int]], k: int = 1) -> "ChangeBatch":
        """Build a deletion-only batch from ``(u, v)`` pairs."""
        rows = list(pairs)
        b = len(rows)
        return cls(
            [r[0] for r in rows] if rows else np.empty(0, VERTEX_DTYPE),
            [r[1] for r in rows] if rows else np.empty(0, VERTEX_DTYPE),
            np.zeros((b, k), DIST_DTYPE),
            np.full(b, KIND_DELETE, np.int8),
        )

    @classmethod
    def weight_changes(
        cls, edges: Iterable[Tuple[int, int, Sequence[float]]]
    ) -> "ChangeBatch":
        """Build a weight-change batch from ``(u, v, new_weight_vector)``
        tuples: each record overwrites the weight of one live ``(u, v)``
        edge (no-op when none is live)."""
        src, dst, ws = cls._weighted_rows(edges)
        return cls(src, dst, ws, np.full(len(src), KIND_WEIGHT, np.int8))

    @staticmethod
    def _weighted_rows(
        edges: Iterable[Tuple[int, int, Sequence[float]]]
    ) -> Tuple[IntArray, IntArray, FloatArray]:
        rows = list(edges)
        if not rows:
            return (
                np.empty(0, VERTEX_DTYPE),
                np.empty(0, VERTEX_DTYPE),
                np.empty((0, 1), DIST_DTYPE),
            )
        src = np.asarray([r[0] for r in rows], dtype=VERTEX_DTYPE)
        dst = np.asarray([r[1] for r in rows], dtype=VERTEX_DTYPE)
        ws = [
            [float(r[2])] if np.isscalar(r[2]) else list(r[2]) for r in rows
        ]
        arity = {len(w) for w in ws}
        if len(arity) != 1:
            raise BatchError(f"inconsistent weight arity in batch: {arity}")
        return src, dst, np.asarray(ws, dtype=DIST_DTYPE)

    @classmethod
    def concat(cls, *batches: "ChangeBatch") -> "ChangeBatch":
        """Concatenate several batches in record order.

        Batches whose records all ignore their weights (deletion-only
        batches) are *k-agnostic*: their zero weight matrix is padded or
        truncated to the arity of the weight-bearing batches, so
        ``concat(insertions_k2, deletions)`` works without threading
        ``k`` through every deletion constructor.  Weight-bearing
        batches must still agree on ``k``.
        """
        if not batches:
            raise BatchError("concat needs at least one batch")
        weighted_ks = {
            b.num_objectives for b in batches
            if bool((b.kind != KIND_DELETE).any())
        }
        if len(weighted_ks) > 1:
            raise BatchError(
                f"cannot concat batches with k in {sorted(weighted_ks)}"
            )
        k = (
            next(iter(weighted_ks)) if weighted_ks
            else max(b.num_objectives for b in batches)
        )

        def to_k(b: "ChangeBatch") -> FloatArray:
            if b.num_objectives == k:
                return b.weights
            # only reachable for deletion-only batches (weights unused)
            return np.zeros((b.num_changes, k), DIST_DTYPE)

        return cls(
            np.concatenate([b.src for b in batches]),
            np.concatenate([b.dst for b in batches]),
            np.vstack([to_k(b) for b in batches]),
            np.concatenate([b.kind for b in batches]),
        )

    # ------------------------------------------------------------------
    @property
    def insert_mask(self) -> np.ndarray:
        """Boolean view: ``True`` exactly for insertion records.

        Kept for compatibility with insert/delete-only callers; note
        that ``~insert_mask`` covers deletions *and* weight changes —
        kind-aware code should read :attr:`kind` instead.
        """
        result: np.ndarray = self.kind == KIND_INSERT
        return result

    @property
    def num_changes(self) -> int:
        """Total number of change records ``|ΔE|``."""
        return int(self.src.shape[0])

    @property
    def num_insertions(self) -> int:
        """Number of insertion records ``|Ins|``."""
        return int((self.kind == KIND_INSERT).sum())

    @property
    def num_deletions(self) -> int:
        """Number of deletion records ``|Del|``."""
        return int((self.kind == KIND_DELETE).sum())

    @property
    def num_weight_changes(self) -> int:
        """Number of weight-change records."""
        return int((self.kind == KIND_WEIGHT).sum())

    @property
    def num_objectives(self) -> int:
        """Weight-vector arity ``k``."""
        return int(self.weights.shape[1])

    def __len__(self) -> int:
        return self.num_changes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        wc = self.num_weight_changes
        extra = f", wchg={wc}" if wc else ""
        return (
            f"ChangeBatch(ins={self.num_insertions}, "
            f"del={self.num_deletions}{extra}, k={self.num_objectives})"
        )

    # ------------------------------------------------------------------
    def insert_records(self) -> Tuple[IntArray, IntArray, FloatArray]:
        """``(src, dst, weights)`` restricted to insertion records."""
        m = self.kind == KIND_INSERT
        return self.src[m], self.dst[m], self.weights[m]

    def delete_records(self) -> Tuple[IntArray, IntArray]:
        """``(src, dst)`` restricted to deletion records."""
        m = self.kind == KIND_DELETE
        return self.src[m], self.dst[m]

    def weight_change_records(self) -> Tuple[IntArray, IntArray, FloatArray]:
        """``(src, dst, new_weights)`` restricted to weight changes."""
        m = self.kind == KIND_WEIGHT
        return self.src[m], self.dst[m], self.weights[m]

    def _only(self, code: int) -> "ChangeBatch":
        m = self.kind == code
        return ChangeBatch(self.src[m], self.dst[m], self.weights[m],
                           self.kind[m])

    def only_insertions(self) -> "ChangeBatch":
        """The insertion-only sub-batch."""
        return self._only(KIND_INSERT)

    def only_deletions(self) -> "ChangeBatch":
        """The deletion-only sub-batch (weight changes excluded)."""
        return self._only(KIND_DELETE)

    def only_weight_changes(self) -> "ChangeBatch":
        """The weight-change-only sub-batch."""
        return self._only(KIND_WEIGHT)

    # ------------------------------------------------------------------
    def apply_to(self, g: DiGraph) -> List[int]:
        """Apply the batch to ``g`` in record order.

        Insertions add edges (returning their edge ids).  Deletion and
        weight-change records target the live matching edge with the
        lexicographically smallest weight vector — the same edge
        :meth:`~repro.graph.digraph.DiGraph.remove_edge` picks — and
        are skipped with no effect when no live edge matches
        (idempotent semantics for randomly generated batches).
        Record order matters: a deletion can remove an edge inserted
        earlier in the same batch, and consecutive weight changes on
        one ``(u, v)`` pair re-resolve their target edge after each
        change.
        """
        if self.num_changes and (
            int(self.src.max(initial=0)) >= g.num_vertices
            or int(self.dst.max(initial=0)) >= g.num_vertices
        ):
            raise BatchError(
                "batch references vertices outside the graph; "
                "grow the graph first with add_vertices()"
            )
        if (
            self.num_changes > self.num_deletions
            and self.num_objectives != g.num_objectives
        ):
            raise BatchError(
                f"batch k={self.num_objectives} != graph k={g.num_objectives}"
            )
        eids: List[int] = []
        for i in range(self.num_changes):
            u, v = int(self.src[i]), int(self.dst[i])
            code = int(self.kind[i])
            if code == KIND_INSERT:
                eids.append(g.add_edge(u, v, self.weights[i]))
            elif code == KIND_DELETE:
                if g.has_edge(u, v):
                    g.remove_edge(u, v)
            else:  # KIND_WEIGHT
                eid = _min_weight_eid(g, u, v)
                if eid is not None:
                    g.set_weight(eid, self.weights[i])
        return eids
