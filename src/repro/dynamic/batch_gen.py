"""Random change-batch generators (the paper's dynamic workload).

"To make our datasets dynamic in our experiment, we randomly generate
batches of changed edges" (§4).  Endpoints are uniform over the vertex
set; insertion weights come from the same distribution as the base
graph's weights.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BatchError
from repro.dynamic.changes import ChangeBatch
from repro.graph.digraph import DiGraph
from repro.types import DIST_DTYPE, VERTEX_DTYPE

__all__ = [
    "random_insert_batch",
    "local_insert_batch",
    "random_delete_batch",
    "random_weight_change_batch",
    "random_mixed_batch",
]


def _rng(seed) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_insert_batch(
    g: DiGraph,
    size: int,
    seed=0,
    low: float = 1.0,
    high: float = 10.0,
    allow_self_loops: bool = False,
) -> ChangeBatch:
    """``size`` random edge insertions with uniform endpoints/weights.

    Mirrors the paper's ΔE generation.  Self-loops are resampled away
    by default (they can never improve a shortest path).
    """
    if size < 0:
        raise BatchError("batch size must be >= 0")
    n = g.num_vertices
    if n < 1 or (n < 2 and not allow_self_loops):
        raise BatchError("graph too small to generate insertions")
    rng = _rng(seed)
    src = rng.integers(0, n, size=size, dtype=VERTEX_DTYPE)
    dst = rng.integers(0, n, size=size, dtype=VERTEX_DTYPE)
    if not allow_self_loops:
        loops = src == dst
        while loops.any():
            dst[loops] = rng.integers(0, n, size=int(loops.sum()),
                                      dtype=VERTEX_DTYPE)
            loops = src == dst
    weights = rng.uniform(low, high,
                          size=(size, g.num_objectives)).astype(DIST_DTYPE)
    return ChangeBatch(src, dst, weights, np.ones(size, bool))


def local_insert_batch(
    g: DiGraph,
    size: int,
    hops: int = 3,
    seed=0,
    low: float = 1.0,
    high: float = 10.0,
) -> ChangeBatch:
    """``size`` insertions whose endpoints are a short walk apart.

    Each record picks a random tail ``u`` and sets the head ``v`` to
    the endpoint of a random out-walk of up to ``hops`` steps from
    ``u`` — the "new local street" model of road-network growth, as
    opposed to the global teleports of :func:`random_insert_batch`.
    Local insertions can shortcut at most ``hops`` hops, so their
    affected regions stay small; the update-vs-recompute benchmark
    contrasts the two regimes.

    Tails with no outgoing walk are resampled; a graph with no edges
    raises :class:`BatchError`.
    """
    if size < 0:
        raise BatchError("batch size must be >= 0")
    if g.num_edges == 0:
        raise BatchError("local_insert_batch needs a graph with edges")
    if hops < 1:
        raise BatchError("hops must be >= 1")
    rng = _rng(seed)
    n = g.num_vertices
    src, dst = [], []
    attempts = 0
    while len(src) < size:
        attempts += 1
        if attempts > 100 * (size + 1):
            raise BatchError(
                "could not find enough local pairs; graph too disconnected"
            )
        u = int(rng.integers(0, n))
        v = u
        for _ in range(int(rng.integers(1, hops + 1))):
            nbrs = [w for w, _ in g.out_edges(v)]
            if not nbrs:
                break
            v = nbrs[int(rng.integers(0, len(nbrs)))]
        if v == u:
            continue
        src.append(u)
        dst.append(v)
    weights = rng.uniform(low, high,
                          size=(size, g.num_objectives)).astype(DIST_DTYPE)
    return ChangeBatch(src, dst, weights, np.ones(size, bool))


def random_delete_batch(g: DiGraph, size: int, seed=0) -> ChangeBatch:
    """``size`` deletion records drawn from the graph's live edges.

    Sampling is without replacement when possible; asking for more
    deletions than live edges raises :class:`BatchError`.
    """
    if size < 0:
        raise BatchError("batch size must be >= 0")
    edges = [(u, v) for u, v, _ in g.edges()]
    if size > len(edges):
        raise BatchError(
            f"cannot delete {size} edges from a graph with {len(edges)}"
        )
    rng = _rng(seed)
    idx = rng.choice(len(edges), size=size, replace=False) if size else []
    return ChangeBatch.deletions([edges[i] for i in idx],
                                 k=g.num_objectives)


def random_weight_change_batch(
    g: DiGraph,
    size: int,
    seed=0,
    low: float = 1.0,
    high: float = 10.0,
) -> ChangeBatch:
    """``size`` weight-change records over the graph's live edges.

    Endpoints are sampled without replacement from the live edge set
    (capped like :func:`random_delete_batch`); new weight vectors come
    from the same uniform distribution as insertion weights, so raises
    and drops are equally likely on typical base graphs.
    """
    if size < 0:
        raise BatchError("batch size must be >= 0")
    edges = [(u, v) for u, v, _ in g.edges()]
    if size > len(edges):
        raise BatchError(
            f"cannot re-weight {size} edges in a graph with {len(edges)}"
        )
    rng = _rng(seed)
    idx = rng.choice(len(edges), size=size, replace=False) if size else []
    weights = rng.uniform(low, high,
                          size=(size, g.num_objectives)).astype(DIST_DTYPE)
    return ChangeBatch.weight_changes(
        (edges[i][0], edges[i][1], weights[j])
        for j, i in enumerate(idx)
    )


def random_mixed_batch(
    g: DiGraph,
    size: int,
    insert_fraction: float = 0.75,
    seed=0,
    low: float = 1.0,
    high: float = 10.0,
    weight_change_fraction: float = 0.0,
) -> ChangeBatch:
    """A shuffled mix of insertions, deletions, and weight changes.

    ``insert_fraction`` of the records are insertions and
    ``weight_change_fraction`` re-weight existing edges; the rest
    delete existing edges.  Deletions and weight changes are both
    capped at the live edge count (each sampled independently, so one
    batch can delete an edge it also re-weights — the fully dynamic
    pipeline resolves such interleavings by record order).  Used by the
    fully-dynamic extension benchmarks and the differential test
    matrix.
    """
    if not 0.0 <= insert_fraction <= 1.0:
        raise BatchError("insert_fraction must be in [0, 1]")
    if not 0.0 <= weight_change_fraction <= 1.0 - insert_fraction:
        raise BatchError(
            "weight_change_fraction must be in [0, 1 - insert_fraction]"
        )
    rng = _rng(seed)
    n_ins = int(round(size * insert_fraction))
    n_wc = min(int(round(size * weight_change_fraction)), g.num_edges)
    n_del = min(size - n_ins - n_wc, g.num_edges)
    ins = random_insert_batch(g, n_ins, seed=rng, low=low, high=high)
    wc = random_weight_change_batch(g, n_wc, seed=rng, low=low, high=high)
    dele = random_delete_batch(g, n_del, seed=rng)
    combined = ChangeBatch.concat(ins, wc, dele)
    order = rng.permutation(combined.num_changes)
    return ChangeBatch(
        combined.src[order],
        combined.dst[order],
        combined.weights[order],
        combined.kind[order],
    )
