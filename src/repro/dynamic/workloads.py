"""Named application workloads from the paper's motivating scenarios.

Three scenarios from §1/§3.2, packaged as reproducible fixtures for the
examples and extension benchmarks:

- **Road traffic** — "in road transportation networks, one may optimize
  different objectives such as distance, estimated travel time, ..."
  A road-like network whose two objectives are travel time and fuel
  consumption (weakly anticorrelated: fast roads burn more fuel), with
  a stream of new-street insertions.
- **Wireless sensor network** — "it is necessary to jointly optimize
  the latency and energy consumption along the data collection routes
  in WSNs."  A random geometric graph whose objectives are latency and
  transmission energy, rooted at a sink.
- **Drone delivery** — "let there be two efficient delivery routes T_f
  and T_e depending on the shortest flying time and the lowest energy
  consumption" with an energy budget that switches objective
  priorities.  A road-like airspace grid with flying-time/energy
  objectives.

Each builder returns a :class:`Scenario` with the graph, the natural
source vertex, a change stream, and display metadata.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.dynamic.stream import ChangeStream
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_geometric, road_like

__all__ = [
    "Scenario",
    "road_traffic_scenario",
    "wsn_scenario",
    "drone_delivery_scenario",
]


@dataclass
class Scenario:
    """A packaged application workload.

    Attributes
    ----------
    name:
        Human-readable scenario name.
    graph:
        The bi-objective network (mutated by the stream as it plays).
    source:
        Natural root vertex (trip origin / WSN sink / drone depot).
    objective_names:
        Display names of the two objectives, in order.
    stream:
        A :class:`~repro.dynamic.stream.ChangeStream` of topology
        changes over time.
    """

    name: str
    graph: DiGraph
    source: int
    objective_names: Tuple[str, str]
    stream: ChangeStream


def _reweight_anticorrelated(
    g: DiGraph, rng: np.random.Generator, spread: float = 0.6
) -> DiGraph:
    """Re-draw weights so objective 1 mirrors objective 0 with noise.

    A fast (cheap objective-0) edge becomes expensive in objective 1
    with probability proportional to ``spread`` — the time/fuel and
    latency/energy trade-offs of the motivating scenarios.
    """
    out = DiGraph(g.num_vertices, 2)
    for u, v, eid in g.edges():
        w0 = float(g.weight(eid)[0])
        mirror = 11.0 - w0  # weights live in [1, 10]
        w1 = (1 - spread) * w0 + spread * mirror
        w1 += rng.uniform(-0.5, 0.5)
        out.add_edge(u, v, (w0, max(0.1, w1)))
    return out


def road_traffic_scenario(
    n: int = 2500, steps: int = 5, batch_size: int = 40, seed: int = 0
) -> Scenario:
    """Road network: travel time vs fuel consumption.

    "Note that travel time and fuel consumptions are not linearly
    correlated due to road elevation and traffic." (§2.1) — weights are
    anticorrelated with noise.  The stream inserts new road segments.
    """
    rng = np.random.default_rng(seed)
    g = _reweight_anticorrelated(road_like(n, k=2, seed=seed), rng)
    stream = ChangeStream(g, batch_size=batch_size, steps=steps,
                          seed=seed + 1)
    return Scenario(
        name="road-traffic",
        graph=g,
        source=0,
        objective_names=("travel time", "fuel"),
        stream=stream,
    )


def wsn_scenario(
    n: int = 1500, steps: int = 4, batch_size: int = 25, seed: int = 0
) -> Scenario:
    """Wireless sensor network: latency vs transmission energy.

    The graph is a random geometric graph (the paper picks
    rgg-n-2-20-s0 "particularly considering the ... wireless sensor
    network" scenario); routes are computed from the sink over reversed
    links, so ``source`` is the sink.  New links appear as radios
    retune (the stream's insertions).
    """
    rng = np.random.default_rng(seed)
    g = _reweight_anticorrelated(
        random_geometric(n, k=2, seed=seed), rng
    )
    stream = ChangeStream(g, batch_size=batch_size, steps=steps,
                          seed=seed + 1)
    return Scenario(
        name="wsn-data-collection",
        graph=g,
        source=0,  # the sink
        objective_names=("latency", "energy"),
        stream=stream,
    )


def drone_delivery_scenario(
    n: int = 2000, steps: int = 4, batch_size: int = 30, seed: int = 0
) -> Scenario:
    """Drone delivery: flying time vs energy under wind dynamics.

    The airspace is a road-like lattice (flight corridors); wind
    changes appear as newly inserted parallel corridors with improved
    weights (an incremental encoding of time-varying conditions, per
    the paper's insertion-only focus).
    """
    rng = np.random.default_rng(seed)
    g = _reweight_anticorrelated(road_like(n, k=2, seed=seed), rng)
    stream = ChangeStream(g, batch_size=batch_size, steps=steps,
                          seed=seed + 2)
    return Scenario(
        name="drone-delivery",
        graph=g,
        source=0,  # the depot
        objective_names=("flying time", "energy"),
        stream=stream,
    )
