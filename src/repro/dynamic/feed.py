"""Record-level change feeds: the streaming-ingest view of ``ΔE``.

:class:`~repro.dynamic.changes.ChangeBatch` is the unit the update
algorithms consume, but a live network does not deliver batches — it
delivers individual edge events that *become* batches only once a
coalescing policy (size/latency triggers, see
:mod:`repro.service.coalesce`) cuts the stream.  This module provides
the record-level vocabulary between the two:

- :class:`EdgeEdit` — one edge event (insert / delete / re-weight),
- :func:`edits_of` — decompose a batch into its record-order edits,
- :func:`batch_of` — recompose edits into a batch, preserving arrival
  order (record order matters: a delete may target an edge inserted
  earlier in the same batch).

Round-tripping is exact: ``batch_of(edits_of(b), k=b.num_objectives)``
reproduces ``b`` record for record.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, NamedTuple, Optional, Tuple

import numpy as np

from repro.dynamic.changes import (
    KIND_DELETE,
    KIND_INSERT,
    KIND_WEIGHT,
    ChangeBatch,
)
from repro.dynamic.stream import ChangeStream
from repro.errors import BatchError
from repro.types import DIST_DTYPE, VERTEX_DTYPE

__all__ = ["EdgeEdit", "edits_of", "batch_of", "stream_edits"]


class EdgeEdit(NamedTuple):
    """One edge event: a single record of a :class:`ChangeBatch`.

    ``weights`` is a ``k``-tuple for insert/re-weight records and
    ``None`` for deletions (whose weights the batch machinery ignores).
    """

    kind: int
    u: int
    v: int
    weights: Optional[Tuple[float, ...]] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = {KIND_DELETE: "del", KIND_INSERT: "ins", KIND_WEIGHT: "chg"}
        w = "" if self.weights is None else f", w={list(self.weights)}"
        return f"EdgeEdit({tag[self.kind]} {self.u}->{self.v}{w})"


def edits_of(batch: ChangeBatch) -> Iterator[EdgeEdit]:
    """Yield the batch's records as :class:`EdgeEdit`\\ s, in order."""
    for i in range(batch.num_changes):
        kind = int(batch.kind[i])
        yield EdgeEdit(
            kind,
            int(batch.src[i]),
            int(batch.dst[i]),
            None if kind == KIND_DELETE
            else tuple(float(w) for w in batch.weights[i]),
        )


def batch_of(edits: Iterable[EdgeEdit], k: int = 1) -> ChangeBatch:
    """Recompose ``edits`` into one batch, preserving arrival order.

    ``k`` sets the weight arity for an all-deletion (or empty) input;
    weight-bearing edits must agree with it.
    """
    rows: List[EdgeEdit] = list(edits)
    b = len(rows)
    src = np.empty(b, VERTEX_DTYPE)
    dst = np.empty(b, VERTEX_DTYPE)
    kinds = np.empty(b, np.int8)
    weights = np.zeros((b, k), DIST_DTYPE)
    for i, e in enumerate(rows):
        src[i], dst[i], kinds[i] = e.u, e.v, e.kind
        if e.kind != KIND_DELETE:
            if e.weights is None:
                raise BatchError(
                    f"edit {i} ({e!r}) carries no weights but is not a "
                    f"deletion"
                )
            if len(e.weights) != k:
                raise BatchError(
                    f"edit {i} has weight arity {len(e.weights)}, "
                    f"expected k={k}"
                )
            weights[i] = e.weights
    return ChangeBatch(src, dst, weights, kinds)


def stream_edits(stream: ChangeStream) -> Iterator[EdgeEdit]:
    """Flatten a :class:`ChangeStream` into individual edits.

    Batches are generated (and applied to the stream's graph, matching
    the :meth:`~repro.dynamic.stream.ChangeStream.play` contract that
    generation sees the evolving topology) one step at a time; their
    records are then yielded individually — the synthetic stand-in for
    a live event feed driving the update service's ingest queue.
    """
    for _ in range(stream.steps):
        batch = stream._make_batch()
        batch.apply_to(stream.graph)
        yield from edits_of(batch)
