"""Dynamic-network machinery: change batches, generators, streams, workloads.

The paper's experimental setup "randomly generates batches of changed
edges" (§4) over static base networks.  This package provides:

- :class:`~repro.dynamic.changes.ChangeBatch` — a batch of edge
  insertions, deletions, and weight changes, the ``ΔE`` object of the
  paper (each record stores endpoints, a weight vector, and a kind
  code, mirroring the paper's changed-edge structure extended with the
  fully dynamic weight-change record).
- :mod:`~repro.dynamic.batch_gen` — seeded random batch generators.
- :class:`~repro.dynamic.stream.ChangeStream` — a multi-timestep
  sequence of batches (the evolving network ``G_t → G_{t+1} → …``).
- :mod:`~repro.dynamic.workloads` — named application scenarios (road
  traffic, WSN, drone delivery) used by examples and benchmarks.
- :mod:`~repro.dynamic.feed` — the record-level view: single
  :class:`~repro.dynamic.feed.EdgeEdit` events and batch ⇄ edit
  conversion, feeding the always-on update service's ingest queue
  (:mod:`repro.service`).
"""

from repro.dynamic.batch_gen import (
    local_insert_batch,
    random_delete_batch,
    random_insert_batch,
    random_mixed_batch,
    random_weight_change_batch,
)
from repro.dynamic.changes import (
    KIND_DELETE,
    KIND_INSERT,
    KIND_WEIGHT,
    ChangeBatch,
)
from repro.dynamic.feed import EdgeEdit, batch_of, edits_of, stream_edits
from repro.dynamic.stream import ChangeStream

__all__ = [
    "ChangeBatch",
    "ChangeStream",
    "EdgeEdit",
    "KIND_DELETE",
    "KIND_INSERT",
    "KIND_WEIGHT",
    "batch_of",
    "edits_of",
    "random_insert_batch",
    "local_insert_batch",
    "random_delete_batch",
    "random_weight_change_batch",
    "random_mixed_batch",
    "stream_edits",
]
