"""The :class:`Engine` protocol and engine resolution.

An *engine* executes supersteps.  One call to
:meth:`Engine.parallel_for` is one superstep: a set of independent
tasks followed by an implicit barrier, exactly the structure of the
``parallel for`` loops in the paper's Algorithms 1–2.  Tasks inside a
superstep must not depend on each other's writes; the vertex-grouping
technique of the paper guarantees this for the shortest-path kernels.

Work accounting
---------------
The simulated backend needs to know how much work each task performed
to compute a makespan.  Task functions therefore may return a tuple
``(value, work_units)`` when called under an engine whose
``wants_work`` is true; the convention is mediated by
:func:`repro.parallel.cost.WorkMeter` so algorithm code stays tidy.
The simpler path used throughout :mod:`repro.core`: pass
``work_fn=lambda item, value: units`` to ``parallel_for`` and return
plain values.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Type,
    TypeVar,
    Union,
    runtime_checkable,
)

from repro.errors import EngineError, UnknownEngineError

T = TypeVar("T")
R = TypeVar("R")

__all__ = [
    "Engine",
    "SlabTask",
    "engine_observability",
    "resolve_engine",
    "slab_spans",
    "parallel_for_slabs",
]


@runtime_checkable
class Engine(Protocol):
    """Execution engine protocol (one ``parallel_for`` = one superstep)."""

    #: Human-readable backend name (``"serial"``, ``"threads"``, ...).
    name: str

    #: Number of (real or virtual) threads.
    threads: int

    def parallel_for(
        self,
        items: Sequence[T],
        fn: Callable[[T], R],
        work_fn: Optional[Callable[[T, R], float]] = None,
    ) -> List[R]:
        """Apply ``fn`` to every item as one superstep; return results
        in item order.

        ``work_fn(item, result)`` (optional) reports the work units the
        task consumed; only cost-model engines read it.
        """
        ...

    def map_reduce(
        self,
        items: Sequence[T],
        fn: Callable[[T], R],
        reduce_fn: Callable[[Any, R], Any],
        init: Any,
        work_fn: Optional[Callable[[T, R], float]] = None,
    ) -> Any:
        """``parallel_for`` followed by a sequential fold of results."""
        ...

    def charge(self, units: float) -> None:
        """Account ``units`` of *serial* work (virtual-clock engines only)."""
        ...


@dataclass(frozen=True)
class SlabTask:
    """A superstep task addressable *by reference* instead of by closure.

    Shared-memory engines cannot ship closures to their workers (spawn
    pickling), so the vectorised kernels describe each superstep as

    - ``ref``: the task function as an importable ``"module:qualname"``
      string.  The function must have the *slab kernel signature*
      ``fn(arrays, params, lo, hi)`` where ``arrays`` maps logical
      names to ndarrays and all mutation goes through ``arrays``;
    - ``arrays``: the logical names of the arrays the kernel consumes —
      each must have been published to the engine with
      :meth:`~repro.parallel.backends.shm.SharedMemoryEngine.plant`;
    - ``params``: small picklable scalars (never ndarrays — the
      dispatch path refuses to pickle arrays by design);
    - ``writes``: the subset of ``arrays`` the kernel mutates.  Crash
      recovery snapshots exactly this set before a dispatched superstep
      so a worker death can roll the shared state back and re-run on
      pristine inputs (see
      :meth:`~repro.parallel.backends.shm.SharedMemoryEngine.parallel_for_slabs`).
      ``None`` (the default) means "unknown" and conservatively
      snapshots every catalog array; declare ``()`` for a read-only
      kernel to skip the snapshot entirely.

    Engines without slab dispatch ignore the task and run the closure
    fallback that :func:`parallel_for_slabs` also receives.
    """

    ref: str
    arrays: Tuple[str, ...]
    params: Mapping[str, Any] = field(default_factory=dict)
    writes: Optional[Tuple[str, ...]] = None


class BaseEngine:
    """Shared plumbing for concrete engines.

    Every wall-clock backend accumulates :attr:`work_units` — the sum
    of ``work_fn(item, result)`` over executed tasks (one unit per task
    when no ``work_fn`` is given), matching the accounting the
    simulated backend feeds its virtual clock.  The cross-backend
    parity of this counter is a regression-tested invariant: a backend
    that drops ``work_fn`` silently breaks the traced-span work
    distributions and the simulated replays.
    """

    name = "base"
    #: How worker-task spans reach a recording tracer: ``"inline"``
    #: backends run tasks in the master process, where the module-global
    #: tracer records them directly; ``"collected"`` backends run tasks
    #: in other processes and ship spans back through the piggybacked
    #: reply protocol of :mod:`repro.obs.collect`.  ``repro info``
    #: surfaces this per backend.
    worker_spans = "inline"

    def __init__(self, threads: int = 1) -> None:
        if threads < 1:
            raise EngineError(f"threads must be >= 1, got {threads}")
        self.threads = int(threads)
        self.work_units: float = 0.0
        #: Extra labels stamped onto spans/metrics merged from this
        #: engine's workers (the partitioned engine sets
        #: ``{"shard": "<i>"}`` on each inner pool).
        self.obs_labels: Dict[str, str] = {}

    def _account_work(
        self,
        items: Sequence[T],
        results: Sequence[R],
        work_fn: Optional[Callable[[T, R], float]],
    ) -> None:
        """Accumulate the superstep's work units (master side)."""
        if work_fn is None:
            self.work_units += float(len(items))
        else:
            self.work_units += float(
                sum(work_fn(items[i], results[i]) for i in range(len(items)))
            )

    def parallel_for(
        self,
        items: Sequence[T],
        fn: Callable[[T], R],
        work_fn: Optional[Callable[[T, R], float]] = None,
    ) -> List[R]:
        raise NotImplementedError  # pragma: no cover - abstract

    def map_reduce(
        self,
        items: Sequence[T],
        fn: Callable[[T], R],
        reduce_fn: Callable[[Any, R], Any],
        init: Any,
        work_fn: Optional[Callable[[T, R], float]] = None,
    ) -> Any:
        acc = init
        for r in self.parallel_for(items, fn, work_fn=work_fn):
            acc = reduce_fn(acc, r)
        return acc

    def charge(self, units: float) -> None:  # noqa: D401 - trivial
        """No-op for wall-clock engines."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(threads={self.threads})"


def slab_spans(
    n_items: int, engine: "Engine", min_chunk: int = 1
) -> List[Tuple[int, int]]:
    """Contiguous ``(lo, hi)`` spans covering ``range(n_items)``.

    The vectorised CSR kernels don't want one task per vertex — they
    want a handful of *array slabs* per thread, each processed with
    whole-slab numpy calls.  This sizes the slabs for the engine: about
    4 per thread (dynamic-scheduling slack without drowning in dispatch
    overhead), but never smaller than ``min_chunk`` items, so a serial
    engine sees one or two big slabs and a 64-thread engine sees a few
    hundred.
    """
    if n_items <= 0:
        return []
    threads = max(1, int(getattr(engine, "threads", 1)))
    nslabs = max(1, min(4 * threads, -(-n_items // max(1, min_chunk))))
    bounds = [round(i * n_items / nslabs) for i in range(nslabs + 1)]
    return [
        (bounds[i], bounds[i + 1])
        for i in range(nslabs)
        if bounds[i] < bounds[i + 1]
    ]


def parallel_for_slabs(
    engine: "Engine",
    n_items: int,
    fn: Callable[[int, int], R],
    work_fn: Optional[Callable[[Tuple[int, int], R], float]] = None,
    min_chunk: int = 1,
    task: Optional[SlabTask] = None,
) -> List[R]:
    """One superstep over contiguous index slabs: ``fn(lo, hi)`` per slab.

    The slab decomposition preserves the vertex-ownership guarantee of
    the per-item loops it replaces — each index belongs to exactly one
    slab — while letting the task body be a batched numpy kernel.
    ``work_fn(span, result)`` reports work units exactly as in
    :meth:`Engine.parallel_for`.

    When ``task`` is given *and* the engine advertises
    ``supports_slab_dispatch`` (the shared-memory backend, possibly
    under checked/traced wrappers), the superstep is dispatched by
    reference through :class:`SlabTask` — workers read the planted
    arrays out of shared memory and only the ``(lo, hi)`` spans travel.
    Every other engine runs the ``fn`` closure exactly as before, so
    kernels pass both and stay backend-agnostic.
    """
    if task is not None and getattr(engine, "supports_slab_dispatch", False):
        return engine.parallel_for_slabs(  # type: ignore[attr-defined]
            n_items, task, work_fn=work_fn, min_chunk=min_chunk
        )
    spans = slab_spans(n_items, engine, min_chunk)
    return engine.parallel_for(
        spans, lambda span: fn(span[0], span[1]), work_fn=work_fn
    )


def _engine_table() -> Dict[str, Type[Any]]:
    """Backend name → engine class (shared by resolution and info)."""
    # imports deferred to avoid a cycle with backends importing BaseEngine
    from repro.parallel.backends.partitioned import PartitionedEngine
    from repro.parallel.backends.processes import ProcessEngine
    from repro.parallel.backends.serial import SerialEngine
    from repro.parallel.backends.shm import SharedMemoryEngine
    from repro.parallel.backends.simulated import SimulatedEngine
    from repro.parallel.backends.threads import ThreadEngine

    return {
        "serial": SerialEngine,
        "threads": ThreadEngine,
        "processes": ProcessEngine,
        "shm": SharedMemoryEngine,
        "simulated": SimulatedEngine,
        "partitioned": PartitionedEngine,
    }


def engine_observability() -> Dict[str, str]:
    """Backend name → worker-span capability for ``repro info``.

    ``"inline"`` backends execute tasks in the master process, where a
    recording tracer sees their spans directly; ``"collected"``
    backends execute tasks in worker processes and produce full traces
    via the piggybacked collector protocol of :mod:`repro.obs.collect`.
    Either way ``--trace`` yields a single merged timeline.
    """
    return {
        name: str(getattr(cls, "worker_spans", "inline"))
        for name, cls in _engine_table().items()
    }


def resolve_engine(
    engine: Optional[Union[str, Engine]] = None,
    threads: int = 1,
    checked: Optional[bool] = None,
) -> Engine:
    """Coerce ``engine`` into an :class:`Engine` instance.

    Accepts an existing engine (returned unchanged), ``None`` (serial),
    or a backend name ``"serial" | "threads" | "processes" | "shm" |
    "simulated" | "partitioned"`` which is instantiated with
    ``threads``; an unknown name raises
    :class:`~repro.errors.UnknownEngineError` (picklable, carrying the
    registry names).

    ``checked=True`` wraps the resolved backend — any family — in a
    :class:`~repro.parallel.checked.CheckedEngine`, so every kernel run
    on it registers vertex writes with an ownership tracker (the
    dynamic sanitizer for the paper's §3.1 single-writer argument).
    ``checked=None`` (the default) consults the
    ``REPRO_CHECKED_ENGINES`` environment variable, which lets CI run
    the whole tier-1 suite under checked engines without touching call
    sites; ``checked=False`` forces wrapping off.  An engine that is
    already checked is never double-wrapped.

    While the active tracer is recording (``repro.obs.use_tracer`` with
    ``Tracer(recording=True)`` — the CLI's ``--trace`` and the bench
    runner do this), the resolved engine is additionally wrapped in a
    :class:`~repro.obs.engine.TracedEngine`, so every superstep of
    every kernel emits an annotated span; with the default passive or
    null tracer no wrapper is added and the resolved engine is exactly
    what it was before observability existed.
    """
    # imports deferred to avoid a cycle with backends importing BaseEngine
    from repro.obs.engine import TracedEngine
    from repro.obs.tracer import get_tracer
    from repro.parallel.backends.serial import SerialEngine
    from repro.parallel.checked import CheckedEngine

    if checked is None:
        checked = os.environ.get("REPRO_CHECKED_ENGINES", "").strip() not in (
            "",
            "0",
            "false",
        )

    def _wrap(resolved: Engine) -> Engine:
        if isinstance(resolved, TracedEngine):
            return resolved  # already fully wrapped (tracer outermost)
        if checked and not isinstance(resolved, CheckedEngine):
            resolved = CheckedEngine(resolved)
        if get_tracer().recording:
            resolved = TracedEngine(resolved)
        return resolved

    if engine is None:
        return _wrap(SerialEngine())
    if isinstance(engine, str):
        table = _engine_table()
        try:
            cls = table[engine]
        except KeyError:
            raise UnknownEngineError(engine, tuple(table)) from None
        return _wrap(cls(threads=threads) if cls is not SerialEngine else cls())
    if isinstance(engine, Engine):
        return _wrap(engine)
    raise EngineError(f"cannot interpret {engine!r} as an engine")
