"""Vertex-ownership discipline checking.

The paper's central correctness argument (§3.1) is that grouping
inserted edges by destination vertex makes each vertex's distance
writable by exactly one thread per superstep, eliminating races without
locks.  :class:`OwnershipTracker` turns that argument into an
executable assertion: kernels register every write with the task id
that performed it, and a second write to the same vertex inside one
superstep raises :class:`~repro.errors.OwnershipViolation`.

The tracker costs one dict operation per write, so it is enabled only
when a kernel is called with ``check_ownership=True`` (tests do this;
benchmarks do not).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import OwnershipViolation

__all__ = ["OwnershipTracker", "resolve_tracker"]


class OwnershipTracker:
    """Records vertex writes per superstep and detects double-writes.

    Examples
    --------
    >>> t = OwnershipTracker()
    >>> t.record_write(vertex=3, task=0)
    >>> t.record_write(vertex=4, task=1)
    >>> t.next_superstep()
    >>> t.record_write(vertex=3, task=1)   # fine: new superstep
    """

    __slots__ = ("_writers", "supersteps", "writes")

    def __init__(self) -> None:
        self._writers: Dict[int, int] = {}
        self.supersteps: int = 0
        self.writes: int = 0

    def record_write(self, vertex: int, task: int) -> None:
        """Register that ``task`` wrote ``vertex`` this superstep.

        Repeated writes *by the same task* are legal (a task may relax a
        vertex against several incoming edges); a write by a different
        task raises :class:`OwnershipViolation`.
        """
        self.writes += 1
        prev = self._writers.get(vertex)
        if prev is None:
            self._writers[vertex] = task
        elif prev != task:
            from repro.obs.metrics import get_metrics

            m = get_metrics()
            if m.enabled:
                m.counter(
                    "ownership_violations_total",
                    "single-writer discipline violations detected",
                ).inc()
            raise OwnershipViolation(vertex, prev, task)

    def next_superstep(self) -> None:
        """Reset per-superstep state (called at each barrier)."""
        self._writers.clear()
        self.supersteps += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OwnershipTracker(supersteps={self.supersteps}, "
            f"writes={self.writes})"
        )


def resolve_tracker(
    explicit: Optional[OwnershipTracker], engine: object
) -> Optional[OwnershipTracker]:
    """The tracker a kernel should report writes to, if any.

    An explicitly passed tracker wins (the legacy
    ``check_ownership=True`` path); otherwise a
    :class:`~repro.parallel.checked.CheckedEngine` resolved with
    ``checked=True`` exposes its tracker as ``engine.tracker`` and
    every kernel picks it up automatically — that is what makes the
    sanitizer one flag away on every backend family.
    """
    if explicit is not None:
        return explicit
    tracker = getattr(engine, "tracker", None)
    if isinstance(tracker, OwnershipTracker):
        return tracker
    return None
