"""The checked engine: ownership tracking one flag away, on any backend.

:class:`~repro.parallel.atomics.OwnershipTracker` used to be opt-in
per kernel call (``check_ownership=True``).  :class:`CheckedEngine`
moves the opt-in to the *engine*: wrap any backend and every kernel
that runs on it picks up the tracker automatically (kernels look for
an ``engine.tracker`` attribute when no explicit tracker was passed),
and the superstep boundary — one ``parallel_for`` — advances the
tracker so stale writes from a previous superstep can't mask a race.

Enable it per call site (``resolve_engine("threads", threads=4,
checked=True)``) or globally for a whole test run with the
``REPRO_CHECKED_ENGINES=1`` environment variable, which the dedicated
CI job uses to execute the tier-1 suite under checked engines for
every backend family.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

from repro.errors import WriteSetViolation
from repro.parallel.api import SlabTask
from repro.parallel.atomics import OwnershipTracker

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["CheckedEngine"]


class _LockedTracker(OwnershipTracker):
    """An :class:`OwnershipTracker` whose write registration is guarded
    by a lock, so the sanitizer itself is race-free under real-thread
    backends (get-then-set on the writers dict is not atomic)."""

    __slots__ = ("_lock",)

    def __init__(self) -> None:
        super().__init__()
        self._lock = threading.Lock()

    def record_write(self, vertex: int, task: int) -> None:
        with self._lock:
            super().record_write(vertex, task)


class CheckedEngine:
    """Wrap an engine with per-superstep vertex-ownership tracking.

    Satisfies the :class:`~repro.parallel.api.Engine` protocol and
    delegates everything else (``virtual_time``, ``trace``, ``close``,
    ...) to the wrapped backend, so checked engines drop into any call
    site that accepts an engine.

    Attributes
    ----------
    inner:
        The wrapped backend.
    tracker:
        The (thread-safe) :class:`OwnershipTracker` kernels report
        their writes to.
    """

    def __init__(self, inner: Any) -> None:
        if isinstance(inner, CheckedEngine):
            inner = inner.inner  # never stack sanitizers
        self.inner = inner
        self.tracker: OwnershipTracker = _LockedTracker()
        # every view handed out by plant(), for the write-set cross-check
        self._planted: Dict[str, "np.ndarray"] = {}

    @property
    def name(self) -> str:
        return f"checked({self.inner.name})"

    @property
    def threads(self) -> int:
        return int(self.inner.threads)

    def parallel_for(
        self,
        items: Sequence[T],
        fn: Callable[[T], R],
        work_fn: Optional[Callable[[T, R], float]] = None,
    ) -> List[R]:
        self.tracker.next_superstep()
        return self.inner.parallel_for(items, fn, work_fn=work_fn)

    def map_reduce(
        self,
        items: Sequence[T],
        fn: Callable[[T], R],
        reduce_fn: Callable[[Any, R], Any],
        init: Any,
        work_fn: Optional[Callable[[T, R], float]] = None,
    ) -> Any:
        self.tracker.next_superstep()
        return self.inner.map_reduce(
            items, fn, reduce_fn, init, work_fn=work_fn
        )

    def parallel_for_slabs(
        self,
        n_items: int,
        task: SlabTask,
        work_fn: Optional[Callable[[Tuple[int, int], Any], float]] = None,
        min_chunk: int = 1,
    ) -> List[Any]:
        """Slab-dispatch fast path, still one tracked superstep.

        Worker processes cannot report writes into this tracker, so
        slab kernels dispatched by reference record their writes on the
        master after the barrier (see ``repro/core/kernels.py``) — the
        superstep boundary advanced here keeps those recordings scoped
        exactly like the closure path's.

        When the task declares a write-set (``writes is not None``),
        this wrapper also cross-checks it two ways — the runtime twin
        of lint rule R006:

        1. *statically*, against the analyzer's inferred write-set for
           ``task.ref`` (anything the kernel provably stores into but
           didn't declare is rejected before dispatch);
        2. *observationally*, by content-digesting every planted array
           the task maps but does not declare, before and after the
           dispatch — catching dynamic writes static inference can't
           see (e.g. a catalog key computed from ``params``).
        """
        self.tracker.next_superstep()
        self._check_static_writes(task)
        undeclared = self._undeclared_planted(task)
        before = {n: self._digest(a) for n, a in undeclared.items()}
        out = self.inner.parallel_for_slabs(
            n_items, task, work_fn=work_fn, min_chunk=min_chunk
        )
        changed = tuple(
            n for n, a in undeclared.items() if self._digest(a) != before[n]
        )
        if changed:
            raise WriteSetViolation(
                task.ref, changed, "observed content change during dispatch"
            )
        return out

    # -- write-set cross-check (runtime twin of lint rule R006) --------
    @staticmethod
    def _digest(array: "np.ndarray") -> bytes:
        return hashlib.blake2b(
            np.ascontiguousarray(array).tobytes(), digest_size=16
        ).digest()

    def _check_static_writes(self, task: SlabTask) -> None:
        if task.writes is None:
            return
        try:
            from repro.analysis.dataflow import infer_ref_writes
        except ImportError:  # pragma: no cover - analysis pkg stripped
            return
        inferred = infer_ref_writes(task.ref)
        if inferred is None:
            return
        declared = set(task.writes)
        undeclared = tuple(
            k
            for k in inferred.writes
            if k not in declared and not k.startswith("<")
        )
        if undeclared:
            raise WriteSetViolation(
                task.ref, undeclared, "static write-set inference"
            )

    def _undeclared_planted(self, task: SlabTask) -> Dict[str, "np.ndarray"]:
        """Planted arrays the task maps but does not declare writable."""
        if task.writes is None:
            return {}
        declared = set(task.writes)
        return {
            n: self._planted[n]
            for n in task.arrays
            if n not in declared and n in self._planted
        }

    def plant(
        self,
        name: str,
        array: "np.ndarray",
        fingerprint: Optional[Tuple[Any, ...]] = None,
    ) -> "np.ndarray":
        """Forward array planting to a shared-memory backend.

        The returned view is remembered so ``parallel_for_slabs`` can
        digest undeclared arrays around each dispatch (write-set
        cross-check).
        """
        view: "np.ndarray" = self.inner.plant(
            name, array, fingerprint=fingerprint
        )
        self._planted[name] = view
        return view

    def close(self) -> None:
        """Release the wrapped backend's pool/segments, if it has any.

        Wrappers used to swallow ``close()`` into ``__getattr__``
        delegation only when the inner engine defined it; this explicit
        hop makes ``close()`` safe on every checked engine (a no-op
        over serial/threads/simulated backends).
        """
        inner_close = getattr(self.inner, "close", None)
        if callable(inner_close):
            inner_close()

    def charge(self, units: float) -> None:
        self.inner.charge(units)

    def __getattr__(self, attr: str) -> Any:
        # backend-specific surface (virtual_time, trace, ...)
        return getattr(self.inner, attr)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CheckedEngine({self.inner!r})"
