"""Work-unit accounting for the simulated parallel machine.

A *work unit* is one elementary graph operation — in the shortest-path
kernels, one edge relaxation (a read of two distances, an add, a
compare, and possibly three writes).  Algorithms report units through a
:class:`WorkMeter` or through ``parallel_for``'s ``work_fn`` so the
simulated engine can charge tasks realistically.

The default calibration (:data:`DEFAULT_SECONDS_PER_UNIT` etc.) is
anchored to the paper's hardware class: an optimised C++ relaxation on
a Zen-2 core costs on the order of 10–100 ns once memory latency is
included (road-network adjacency is cache-hostile); we use 60 ns.  The
calibration only sets the *scale* of reported milliseconds — speedup
shapes are invariant to it.
"""

from __future__ import annotations

__all__ = [
    "WorkMeter",
    "DEFAULT_SECONDS_PER_UNIT",
    "DEFAULT_TASK_OVERHEAD",
    "DEFAULT_CHUNK_OVERHEAD",
    "DEFAULT_BARRIER_BASE",
    "DEFAULT_BARRIER_PER_LOG_THREAD",
]

#: Virtual seconds charged per work unit (one edge relaxation).
DEFAULT_SECONDS_PER_UNIT: float = 60e-9

#: Fixed cost charged per task (loop-iteration dispatch).
DEFAULT_TASK_OVERHEAD: float = 15e-9

#: Cost of a dynamic-scheduling chunk grab (shared-counter CAS).
DEFAULT_CHUNK_OVERHEAD: float = 120e-9

#: Barrier latency: base plus a per-log2(threads) tree term.
DEFAULT_BARRIER_BASE: float = 1.5e-6
DEFAULT_BARRIER_PER_LOG_THREAD: float = 0.9e-6


class WorkMeter:
    """A cumulative counter of work units.

    Passed into kernels that cannot conveniently report work through
    ``parallel_for``'s ``work_fn`` (e.g. purely sequential sections).

    Examples
    --------
    >>> m = WorkMeter()
    >>> m.add(10)
    >>> m.add(2.5)
    >>> m.total
    12.5
    """

    __slots__ = ("total",)

    def __init__(self) -> None:
        self.total: float = 0.0

    def add(self, units: float) -> None:
        """Accumulate ``units`` of work."""
        self.total += units

    def reset(self) -> float:
        """Zero the counter, returning the previous total."""
        t = self.total
        self.total = 0.0
        return t

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WorkMeter(total={self.total})"
