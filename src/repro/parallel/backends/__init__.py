"""Concrete engine backends (serial, threads, processes, simulated)."""
