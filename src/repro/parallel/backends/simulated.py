"""The simulated parallel machine: deterministic work-span scheduling.

Why this exists
---------------
The paper's scalability study (Figures 4–5) needs 1–64 hardware threads;
CPython's GIL and this environment's single core make those curves
unmeasurable directly.  This backend executes the *identical* task graph
the other engines execute — every superstep, every task, every barrier —
but instead of overlapping tasks in time it **schedules them onto T
virtual threads** and advances a virtual clock:

1. Tasks of a superstep are split into chunks (OpenMP
   ``schedule(dynamic, chunk)``).
2. Virtual threads repeatedly grab the next chunk off a shared queue;
   grabbing costs ``chunk_overhead`` (the shared-counter CAS), each
   task costs ``task_overhead`` plus its reported work units times
   ``seconds_per_unit``.
3. The superstep's virtual elapsed time is the **makespan** — the
   largest per-thread accumulated time — plus a barrier cost that grows
   with ``log2(T)`` (tree barrier).
4. Sequential sections between supersteps are charged via
   :meth:`SimulatedEngine.charge`.

This is a standard work-span (BSP-flavoured) machine model.  It
reproduces the qualitative phenomena the paper reports *from the
algorithm itself*, with no curve-fitting: load imbalance when supersteps
have few or skewed tasks, barrier-dominated saturation at high thread
counts, and the poor scalability of small graphs under large batches
(more propagation iterations → more barriers and thinner supersteps).

Work measurement
----------------
``parallel_for(items, fn, work_fn)`` runs each ``fn(item)`` once (so
side effects and results are exactly the serial ones) and asks
``work_fn(item, result)`` how many units the task consumed.  When
``work_fn`` is missing each task is charged one unit.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.errors import EngineError
from repro.parallel.api import BaseEngine
from repro.parallel.cost import (
    DEFAULT_BARRIER_BASE,
    DEFAULT_BARRIER_PER_LOG_THREAD,
    DEFAULT_CHUNK_OVERHEAD,
    DEFAULT_SECONDS_PER_UNIT,
    DEFAULT_TASK_OVERHEAD,
)

T = TypeVar("T")
R = TypeVar("R")

__all__ = [
    "CostModel",
    "SimulatedEngine",
    "dynamic_makespan",
    "static_makespan",
    "replay_trace",
]


@dataclass(frozen=True)
class CostModel:
    """Virtual-time cost parameters of the simulated machine.

    The defaults are calibrated to the paper's hardware class (Zen-2
    cores, memory-latency-bound graph kernels); see
    :mod:`repro.parallel.cost`.  Speedup *shapes* are robust to the
    absolute scale — only the reported milliseconds move.
    """

    #: Seconds per work unit (one edge relaxation).
    seconds_per_unit: float = DEFAULT_SECONDS_PER_UNIT
    #: Fixed dispatch cost per task.
    task_overhead: float = DEFAULT_TASK_OVERHEAD
    #: Cost of one dynamic-scheduling chunk grab.
    chunk_overhead: float = DEFAULT_CHUNK_OVERHEAD
    #: Barrier cost: ``base + per_log_thread * log2(T)``.
    barrier_base: float = DEFAULT_BARRIER_BASE
    barrier_per_log_thread: float = DEFAULT_BARRIER_PER_LOG_THREAD

    def barrier_cost(self, threads: int) -> float:
        """Latency of one barrier across ``threads`` threads."""
        if threads <= 1:
            return 0.0
        return self.barrier_base + self.barrier_per_log_thread * math.log2(threads)


def dynamic_makespan(
    costs: List[float],
    threads: int,
    chunk: int,
    cost: CostModel,
) -> float:
    """Makespan of dynamically scheduling ``costs`` over ``threads``.

    Event-driven simulation of an OpenMP ``schedule(dynamic, chunk)``
    loop: a min-heap of thread available-times; the earliest-free
    thread grabs the next chunk off the shared counter.
    """
    n = len(costs)
    if n == 0:
        return 0.0
    t = min(threads, n)
    if t == 1:
        return (
            n * cost.task_overhead
            + sum(costs) * cost.seconds_per_unit
            + math.ceil(n / chunk) * cost.chunk_overhead
        )
    heap = [(0.0, i) for i in range(t)]
    next_idx = 0
    makespan = 0.0
    while next_idx < n:
        avail, tid = heapq.heappop(heap)
        end = min(next_idx + chunk, n)
        span = cost.chunk_overhead + sum(
            cost.task_overhead + w * cost.seconds_per_unit
            for w in costs[next_idx:end]
        )
        next_idx = end
        finish = avail + span
        if finish > makespan:
            makespan = finish
        heapq.heappush(heap, (finish, tid))
    return makespan


def static_makespan(
    costs: List[float],
    threads: int,
    cost: CostModel,
) -> float:
    """Makespan under OpenMP ``schedule(static)``: iterations are
    pre-split into ``threads`` contiguous blocks, no work stealing.

    The counterpart of :func:`dynamic_makespan` for the scheduling
    ablation — static dispatch costs one chunk grab per thread but
    eats the full imbalance of skewed supersteps.
    """
    n = len(costs)
    if n == 0:
        return 0.0
    t = min(threads, n)
    bounds = [round(i * n / t) for i in range(t + 1)]
    makespan = 0.0
    for i in range(t):
        block = costs[bounds[i] : bounds[i + 1]]
        span = (
            cost.chunk_overhead
            + len(block) * cost.task_overhead
            + sum(block) * cost.seconds_per_unit
        )
        if span > makespan:
            makespan = span
    return makespan


def replay_trace(
    trace: List[tuple],
    threads: int,
    cost_model: Optional[CostModel] = None,
    chunk_size: Optional[int] = None,
    schedule: str = "dynamic",
) -> float:
    """Virtual seconds to execute a recorded trace on ``threads``.

    ``trace`` comes from a :class:`SimulatedEngine` constructed with
    ``record_trace=True`` (see :attr:`SimulatedEngine.trace`): a list
    of ``("superstep", costs)`` and ``("serial", units)`` events.  The
    algorithm's task structure is independent of the thread count, so
    one recorded execution can be re-scheduled for any ``threads`` —
    this is what makes the 1→64-thread sweeps of the scalability
    benchmarks cheap.
    """
    cm = cost_model or CostModel()
    total = 0.0
    for kind, payload in trace:
        if kind == "serial":
            total += payload * cm.seconds_per_unit
        elif kind == "superstep":
            if schedule == "static":
                total += static_makespan(payload, threads, cm)
            else:
                chunk = chunk_size or max(1, len(payload) // (8 * threads))
                total += dynamic_makespan(payload, threads, chunk, cm)
            total += cm.barrier_cost(threads)
        else:  # pragma: no cover - defensive
            raise EngineError(f"unknown trace event {kind!r}")
    return total


class SimulatedEngine(BaseEngine):
    """Deterministic virtual-time engine (see module docstring).

    Parameters
    ----------
    threads:
        Number of virtual threads ``T``.
    cost_model:
        Machine parameters; defaults are calibrated in
        :mod:`repro.parallel.cost`.
    chunk_size:
        Dynamic-scheduling chunk; ``None`` = ``max(1, n // (8 T))``
        per superstep, matching :class:`ThreadEngine`.

    Attributes
    ----------
    virtual_time:
        Accumulated virtual seconds since construction or
        :meth:`reset_clock`.
    supersteps, tasks_executed, work_units:
        Execution counters (useful for ablation studies).
    """

    name = "simulated"

    def __init__(
        self,
        threads: int = 4,
        cost_model: Optional[CostModel] = None,
        chunk_size: Optional[int] = None,
        record_trace: bool = False,
        schedule: str = "dynamic",
    ) -> None:
        super().__init__(threads=threads)
        if schedule not in ("dynamic", "static"):
            raise EngineError(
                f"unknown schedule {schedule!r}; expected dynamic | static"
            )
        self.cost = cost_model or CostModel()
        self._chunk_size = chunk_size
        self.schedule = schedule
        self.virtual_time: float = 0.0
        self.supersteps: int = 0
        self.tasks_executed: int = 0
        self.work_units: float = 0.0
        #: When ``record_trace``: the replayable execution trace —
        #: ``("superstep", [task costs])`` / ``("serial", units)``
        #: events consumable by :func:`replay_trace`.
        self.trace: Optional[List[tuple]] = [] if record_trace else None

    # ------------------------------------------------------------------
    def reset_clock(self) -> None:
        """Zero the virtual clock, counters, and any recorded trace."""
        self.virtual_time = 0.0
        self.supersteps = 0
        self.tasks_executed = 0
        self.work_units = 0.0
        if self.trace is not None:
            self.trace = []

    @property
    def virtual_time_ms(self) -> float:
        """Virtual elapsed time in milliseconds."""
        return self.virtual_time * 1e3

    def charge(self, units: float) -> None:
        """Charge ``units`` of sequential work to the virtual clock."""
        if units < 0:
            raise EngineError("cannot charge negative work")
        self.work_units += units
        self.virtual_time += units * self.cost.seconds_per_unit
        if self.trace is not None:
            self.trace.append(("serial", float(units)))

    # ------------------------------------------------------------------
    def parallel_for(
        self,
        items: Sequence[T],
        fn: Callable[[T], R],
        work_fn: Optional[Callable[[T, R], float]] = None,
    ) -> List[R]:
        n = len(items)
        if n == 0:
            return []
        # 1. execute every task once (serial semantics, real results)
        results: List[R] = [fn(item) for item in items]
        costs = [
            (work_fn(items[i], results[i]) if work_fn is not None else 1.0)
            for i in range(n)
        ]
        # 2. schedule the measured costs onto T virtual threads
        if self.schedule == "static":
            elapsed = static_makespan(costs, self.threads, self.cost)
        else:
            chunk = self._chunk_size or max(1, n // (8 * self.threads))
            elapsed = dynamic_makespan(costs, self.threads, chunk, self.cost)
        self.virtual_time += elapsed + self.cost.barrier_cost(self.threads)
        self.supersteps += 1
        self.tasks_executed += n
        self.work_units += sum(costs)
        if self.trace is not None:
            self.trace.append(("superstep", costs))
        return results
