"""Process-pool engine for embarrassingly parallel stages.

CPython processes sidestep the GIL at the price of pickling: the task
function and its items must be picklable and tasks must not share
mutable state.  In this package the natural fit is the *hybrid
parallelism* the paper's conclusion proposes: the ``k`` per-objective
SOSP tree updates of Algorithm 2 are independent of each other, so
each can run in its own process while finer-grained parallelism runs
inside.

For non-picklable closures (the common case for the in-place
shortest-path kernels) the engine degrades to a serial loop and says so
once via a warning, rather than failing — callers choose engines by
workload, and a graceful fallback keeps engine choice orthogonal to
correctness.
"""

from __future__ import annotations

import pickle
import warnings
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.parallel.api import BaseEngine

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["ProcessEngine"]


def _chunk_runner(payload: bytes) -> bytes:
    """Executed in the worker process: unpickle (fn, chunk), run, pickle."""
    fn, chunk = pickle.loads(payload)
    return pickle.dumps([fn(item) for item in chunk])


class ProcessEngine(BaseEngine):
    """Execute supersteps on a ``multiprocessing`` pool.

    Parameters
    ----------
    threads:
        Number of worker processes.
    min_items_per_process:
        Below ``threads * min_items_per_process`` items the pool is
        skipped entirely — process dispatch costs milliseconds, so tiny
        supersteps run inline.
    """

    name = "processes"

    def __init__(self, threads: int = 2, min_items_per_process: int = 1) -> None:
        super().__init__(threads=threads)
        self.min_items_per_process = min_items_per_process
        self._pool = None
        self._warned = False

    def _ensure_pool(self):
        if self._pool is None:
            import multiprocessing

            ctx = multiprocessing.get_context("spawn")
            self._pool = ctx.Pool(processes=self.threads)
        return self._pool

    def close(self) -> None:
        """Terminate the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ProcessEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _fallback(self, items, fn):
        if not self._warned:
            warnings.warn(
                "ProcessEngine task is not picklable; running serially. "
                "Use ThreadEngine/SimulatedEngine for shared-state kernels.",
                RuntimeWarning,
                stacklevel=3,
            )
            self._warned = True
        return [fn(item) for item in items]

    def parallel_for(
        self,
        items: Sequence[T],
        fn: Callable[[T], R],
        work_fn: Optional[Callable[[T, R], float]] = None,
    ) -> List[R]:
        n = len(items)
        if n == 0:
            return []
        if self.threads == 1 or n < self.threads * self.min_items_per_process:
            return [fn(item) for item in items]
        # split into one chunk per worker, preserving order
        bounds = [round(i * n / self.threads) for i in range(self.threads + 1)]
        chunks = [
            list(items[bounds[i] : bounds[i + 1]])
            for i in range(self.threads)
            if bounds[i] < bounds[i + 1]
        ]
        try:
            payloads = [pickle.dumps((fn, chunk)) for chunk in chunks]
        except (pickle.PicklingError, AttributeError, TypeError):
            return self._fallback(items, fn)
        pool = self._ensure_pool()
        parts = pool.map(_chunk_runner, payloads)
        out: List[R] = []
        for blob in parts:
            out.extend(pickle.loads(blob))
        return out
