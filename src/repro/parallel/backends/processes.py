"""Process-pool engine for embarrassingly parallel stages.

CPython processes sidestep the GIL at the price of pickling: the task
function and its items must be picklable and tasks must not share
mutable state.  In this package the natural fit is the *hybrid
parallelism* the paper's conclusion proposes: the ``k`` per-objective
SOSP tree updates of Algorithm 2 are independent of each other, so
each can run in its own process while finer-grained parallelism runs
inside.

For non-picklable closures (the common case for the in-place
shortest-path kernels) the engine degrades to a serial loop and says so
once via a warning, rather than failing — callers choose engines by
workload, and a graceful fallback keeps engine choice orthogonal to
correctness.  The degradation covers *both* halves of the spawn
round-trip: tasks the master cannot pickle, and tasks the worker
cannot unpickle (e.g. ``fn`` defined in ``__main__`` under the spawn
context, where the re-imported ``__main__`` no longer defines it) —
the worker reports the failure back instead of raising inside the pool
machinery, which would poison the pool for every later superstep.

For shared-array kernels that must actually run multicore, use the
shared-memory sibling :class:`~repro.parallel.backends.shm.SharedMemoryEngine`,
which ships slab indices instead of closures.
"""

from __future__ import annotations

import atexit
import pickle
import warnings
from typing import Any, Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.obs.collect import WorkerCapture, WorkerReport, merge_reports, obs_header
from repro.obs.tracer import current_span
from repro.parallel.api import BaseEngine

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["ProcessEngine"]

#: First byte of a worker reply: chunk results follow.
_TAG_RESULTS = b"R"
#: First byte of a worker reply: the payload did not survive the
#: spawn round-trip; the repr of the unpickle error follows.
_TAG_UNPICKLABLE = b"U"
#: First byte of a worker reply: ``(results, WorkerReport)`` follows —
#: chunk results plus the worker's piggybacked span/metric report (sent
#: only when the dispatch payload carried an observability header).
_TAG_RESULTS_OBS = b"O"


def _chunk_runner(payload: bytes) -> bytes:
    """Executed in the worker process: unpickle (fn, chunk), run, pickle.

    A payload that pickled fine on the master can still fail to
    *unpickle* here (spawn re-imports modules; ``__main__`` is not the
    master's ``__main__``).  Raising would mark the whole pool broken,
    so the failure is tagged and returned for the master to degrade to
    its serial fallback.  Exceptions raised by the task itself are NOT
    caught — they propagate to the master exactly like any other
    engine's task failure.

    The payload is ``(fn, chunk)`` — or ``(fn, chunk, header)`` when
    the master's tracer is recording, in which case the chunk runs
    under a :class:`~repro.obs.collect.WorkerCapture` and the reply
    piggybacks the worker's span/metric report on the ``b"O"`` tag.
    """
    try:
        parts = pickle.loads(payload)
        fn, chunk = parts[0], parts[1]
        header = parts[2] if len(parts) > 2 else None
    except Exception as exc:  # repro: noqa(R003) - reported to master, which warns and falls back
        return _TAG_UNPICKLABLE + pickle.dumps(repr(exc))
    if header is None:
        return _TAG_RESULTS + pickle.dumps([fn(item) for item in chunk])
    with WorkerCapture(header) as cap:
        with cap.task("worker.chunk", op="parallel_for", items=len(chunk)):
            results = [fn(item) for item in chunk]
        report = cap.report()
    return _TAG_RESULTS_OBS + pickle.dumps((results, report))


def _decode_parts(
    parts: Sequence[bytes],
) -> Tuple[Optional[List[Any]], Optional[str], List[WorkerReport]]:
    """Decode tagged worker replies.

    Returns ``(results, None, reports)`` on success — ``reports``
    collects the piggybacked :class:`~repro.obs.collect.WorkerReport`
    of every ``b"O"``-tagged reply (empty for the legacy ``b"R"`` tag)
    — or ``(None, error_repr, reports)`` when any worker reported an
    unpicklable payload.
    """
    out: List[Any] = []
    reports: List[WorkerReport] = []
    for blob in parts:
        tag, body = blob[:1], blob[1:]
        if tag == _TAG_UNPICKLABLE:
            return None, pickle.loads(body), reports
        if tag == _TAG_RESULTS_OBS:
            results, report = pickle.loads(body)
            out.extend(results)
            reports.append(report)
        else:
            out.extend(pickle.loads(body))
    return out, None, reports


def _chunk_bounds(n: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``range(n)`` into at most ``parts`` contiguous chunks."""
    bounds = [round(i * n / parts) for i in range(parts + 1)]
    return [
        (bounds[i], bounds[i + 1])
        for i in range(parts)
        if bounds[i] < bounds[i + 1]
    ]


class ProcessEngine(BaseEngine):
    """Execute supersteps on a ``multiprocessing`` pool.

    Parameters
    ----------
    threads:
        Number of worker processes.
    min_items_per_process:
        Below ``threads * min_items_per_process`` items the pool is
        skipped entirely — process dispatch costs milliseconds, so tiny
        supersteps run inline.
    """

    name = "processes"
    #: Workers ship spans/metrics back piggybacked on the tagged reply
    #: (see :mod:`repro.obs.collect`); ``repro info`` surfaces this.
    worker_spans = "collected"

    def __init__(self, threads: int = 2, min_items_per_process: int = 1) -> None:
        super().__init__(threads=threads)
        self.min_items_per_process = min_items_per_process
        self._pool = None
        self._warned = False

    def _ensure_pool(self):
        if self._pool is None:
            import multiprocessing

            ctx = multiprocessing.get_context("spawn")
            self._pool = ctx.Pool(processes=self.threads)
            # spawn workers survive interpreter teardown unless someone
            # joins them; the finalizer guarantees that even for engines
            # nobody closes explicitly (unregistered again on close)
            atexit.register(self.close)
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down gracefully (idempotent).

        ``Pool.close()`` + ``join()`` lets in-flight tasks finish;
        the old ``terminate()`` could drop them mid-superstep.  The
        engine stays usable — the next superstep lazily re-creates the
        pool.
        """
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
            atexit.unregister(self.close)

    def __enter__(self) -> "ProcessEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _fallback(self, items, fn, reason: str = "task is not picklable"):
        if not self._warned:
            warnings.warn(
                f"ProcessEngine {reason}; running serially. Use "
                "SharedMemoryEngine for slab kernels or "
                "ThreadEngine/SimulatedEngine for shared-state closures.",
                RuntimeWarning,
                stacklevel=4,
            )
            self._warned = True
        return [fn(item) for item in items]

    def parallel_for(
        self,
        items: Sequence[T],
        fn: Callable[[T], R],
        work_fn: Optional[Callable[[T, R], float]] = None,
    ) -> List[R]:
        n = len(items)
        if n == 0:
            return []
        if self.threads == 1 or n < self.threads * self.min_items_per_process:
            results = [fn(item) for item in items]
            self._account_work(items, results, work_fn)
            return results
        # split into one chunk per worker, preserving order
        chunks = [
            list(items[lo:hi]) for lo, hi in _chunk_bounds(n, self.threads)
        ]
        header = obs_header()
        try:
            payloads = [
                pickle.dumps(
                    (fn, chunk) if header is None else (fn, chunk, header)
                )
                for chunk in chunks
            ]
        except (pickle.PicklingError, AttributeError, TypeError):
            results = self._fallback(items, fn)
            self._account_work(items, results, work_fn)
            return results
        pool = self._ensure_pool()
        parts = pool.map(_chunk_runner, payloads)
        out, error, reports = _decode_parts(parts)
        if header is not None and reports:
            merge_reports(
                reports, header["t_send"], anchor=current_span(),
                labels=self.obs_labels or None,
            )
        if out is None:
            out = self._fallback(
                items, fn,
                reason=f"task did not survive the spawn round-trip ({error})",
            )
        self._account_work(items, out, work_fn)
        return out
