"""Partitioned multi-pool engine with superstep boundary exchange.

:class:`PartitionedEngine` is the single-machine model of the paper's
distributed deployment: the graph is sharded into vertex partitions
(contiguous ranges by default — road-network ids are locality-ordered —
or the greedy min-edgecut refinement from
:mod:`repro.graph.analysis`), one *inner engine pool* runs per shard
(shared-memory by default; serial/threads for tests), and a dynamic
update executes as a loop of supersteps:

1. **Local fixpoint** — every shard with pending frontier seeds runs
   the ordinary Step-2 kernel
   (:func:`repro.core.kernels.propagate_csr`) over its own sub-CSR on
   its own pool, to a *local* fixpoint.  Shards run concurrently; a
   shard only ever writes vertices it owns (edge destinations are
   owned by construction, see :mod:`repro.graph.shards`), so there are
   no cross-shard races.
2. **Boundary exchange** — each shard emits the ``(vertex, dist)``
   improvements of its cut-edge sources since the last exchange; a
   barrier merges them (deterministically, in shard order) into the
   ghost copies of the subscribing shards, marking and seeding them as
   the next superstep's frontier.
3. The loop terminates when no shard emits.

Because every relaxation is a monotone ``min`` over the same float64
path sums the single-pool kernels compute, the loop converges to the
identical least fixpoint — distances are **bitwise equal** to the
serial oracle, certified by ``tests/test_partitioned_differential.py``.
Parent pointers are equally optimal but may tie-break differently
(the wave structure differs across partition counts), which is why the
differential matrix asserts dist bitwise + parent *cost* via tree
certification rather than parent identity.

The engine plugs into the core update functions by *duck typing*:
``sosp_update`` / ``apply_mixed_batch`` route to
:meth:`partitioned_sosp_update` / :meth:`partitioned_mixed_update`
when the resolved engine provides them (checked/traced wrappers
forward the methods transparently).  Generic ``parallel_for``
supersteps — e.g. MOSP's ensemble build and combined Bellman-Ford —
run inline and serially, a documented degraded mode that keeps every
non-sharded code path bitwise identical to the serial backend.
"""

from __future__ import annotations

import contextvars
from concurrent.futures import ThreadPoolExecutor
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    TypeVar,
)

import numpy as np

from repro.errors import AlgorithmError, EngineError
from repro.graph.analysis import (
    partition_by_ranges,
    partition_edgecut,
    refine_partition_greedy,
)
from repro.graph.csr import CSRGraph
from repro.graph.shards import CSRShard, build_shard, build_shards, live_edge_arrays
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.parallel.api import BaseEngine, Engine, resolve_engine
from repro.types import DIST_DTYPE, INF, NO_PARENT, FloatArray, IntArray

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.fully_dynamic import MixedUpdateStats
    from repro.core.tree import SOSPTree
    from repro.dynamic.changes import ChangeBatch
    from repro.graph.digraph import DiGraph

__all__ = ["PartitionedEngine"]

T = TypeVar("T")
R = TypeVar("R")

_EMPTY_I = np.empty(0, dtype=np.int64)
_EMPTY_F = np.empty(0, dtype=DIST_DTYPE)


class _Plan:
    """Cached sharding of one CSR snapshot (rebuilt on identity change)."""

    __slots__ = ("part", "shards", "source_id", "uid", "n", "cut_edges",
                 "synced")

    def __init__(
        self,
        part: IntArray,
        shards: List[CSRShard],
        source_id: int,
        uid: int,
        n: int,
        cut_edges: int,
    ) -> None:
        self.part = part
        self.shards = shards
        self.source_id = source_id
        self.uid = uid
        self.n = n
        self.cut_edges = cut_edges
        self.synced: Optional[Tuple[int, int, int]] = None


class _ShardRun:
    """One shard's per-update state: local dist/parent/marked plus the
    boundary bookkeeping of what has already been emitted."""

    __slots__ = ("shard", "dist", "parent", "marked", "bnd", "bnd_sent",
                 "pending")

    def __init__(
        self, shard: CSRShard, dist_g: FloatArray, parent_dtype: np.dtype
    ) -> None:
        self.shard = shard
        # ghost copies load the *post-invalidation* global state, so
        # every subsequent change is a monotone decrease the exchange
        # phase can deliver
        self.dist: FloatArray = dist_g[shard.l2g]
        # kernels never read parents, only write improved ones (with
        # local predecessor ids); NO_PARENT marks "untouched"
        self.parent: IntArray = np.full(
            shard.n_local, NO_PARENT, dtype=parent_dtype
        )
        self.marked: IntArray = np.zeros(shard.n_local, dtype=np.int8)
        self.bnd: IntArray = np.fromiter(
            sorted(shard.boundary), dtype=np.int64, count=len(shard.boundary)
        )
        self.bnd_sent: FloatArray = self.dist[self.bnd].copy()
        self.pending: IntArray = _EMPTY_I

    def emit(self) -> Tuple[IntArray, FloatArray]:
        """Boundary vertices improved since the last emit, as global
        ids + distances; updates the sent snapshot."""
        if self.bnd.size == 0:
            return _EMPTY_I, _EMPTY_F
        cur = self.dist[self.bnd]
        imp = cur < self.bnd_sent
        if not imp.any():
            return _EMPTY_I, _EMPTY_F
        self.bnd_sent[imp] = cur[imp]
        return self.shard.l2g[self.bnd[imp]], cur[imp]


class PartitionedEngine(BaseEngine):
    """Multi-pool engine: one inner engine per graph shard, boundary
    exchange between supersteps.

    Parameters
    ----------
    threads:
        Worker count of *each* shard pool (``partitions * threads``
        workers in total for process-backed inner pools).
    partitions:
        Number of shards.  ``1`` degrades to the plain single-pool
        behaviour (no exchange ever fires).
    inner:
        Inner pool backend name: ``"shm"`` (default), ``"serial"``,
        ``"threads"``, ``"processes"``, or ``"simulated"``.
    partition_mode:
        ``"ranges"`` (contiguous balanced vertex ranges, the default)
        or ``"edgecut"`` (ranges refined by
        :func:`repro.graph.analysis.refine_partition_greedy`).
    assignment:
        Explicit length-``n`` owner array overriding the partitioner
        (tests use this to build adversarial cuts).  Values must be in
        ``[0, partitions)``.
    inner_options:
        Extra keyword arguments for shared-memory inner pools (e.g.
        ``{"min_dispatch_items": 1}`` to force real dispatch in tests);
        ignored by other inner backends.
    parallel_shards:
        Drive shard supersteps concurrently from a thread pool
        (``False`` runs shards sequentially in index order — results
        are identical either way; the merge is master-side and
        deterministic).
    """

    name = "partitioned"

    #: Core update functions route through the partitioned drivers when
    #: the resolved engine advertises this (wrappers forward it).
    supports_partitioned_update = True
    #: Inner shm pools collect worker spans/metrics and ship them back
    #: on the tagged reply; each pool carries a ``{"shard": i}`` label
    #: so merged series/spans stay attributable per shard.
    worker_spans = "collected"

    def __init__(
        self,
        threads: int = 2,
        partitions: int = 2,
        inner: str = "shm",
        partition_mode: str = "ranges",
        assignment: Optional[IntArray] = None,
        inner_options: Optional[Mapping[str, Any]] = None,
        parallel_shards: bool = True,
    ) -> None:
        super().__init__(threads=threads)
        if partitions < 1:
            raise EngineError(f"partitions must be >= 1, got {partitions}")
        if not isinstance(inner, str):
            raise EngineError(
                f"inner pool must be a backend name, got {inner!r}"
            )
        if inner == "partitioned":
            raise EngineError(
                "the partitioned engine cannot nest itself as inner pool"
            )
        if partition_mode not in ("ranges", "edgecut"):
            raise EngineError(
                f"partition_mode must be 'ranges' or 'edgecut', got "
                f"{partition_mode!r}"
            )
        self.partitions = int(partitions)
        self.inner = inner
        self.inner_options: Dict[str, Any] = dict(inner_options or {})
        self.partition_mode = partition_mode
        self.parallel_shards = bool(parallel_shards)
        self._assignment: Optional[IntArray] = None
        if assignment is not None:
            arr = np.asarray(assignment, dtype=np.int64)
            if arr.size and (arr.min() < 0 or arr.max() >= self.partitions):
                raise EngineError(
                    f"assignment values must lie in [0, {self.partitions})"
                )
            self._assignment = arr
        self._pools: Optional[List[Engine]] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._plan: Optional[_Plan] = None
        self._own_csr: Optional[CSRGraph] = None
        self._own_token: Optional[Tuple[int, int]] = None
        #: Exchange profile of the most recent partitioned update.
        self.last_exchange_stats: Dict[str, int] = {
            "supersteps": 0, "messages": 0, "deliveries": 0,
        }

    # ------------------------------------------------- generic engine
    def parallel_for(
        self,
        items: Sequence[T],
        fn: Callable[[T], R],
        work_fn: Optional[Callable[[T, R], float]] = None,
    ) -> List[R]:
        """Generic (non-sharded) supersteps run inline and serially.

        Only the partitioned update drivers exploit the shard pools;
        everything else — MOSP ensemble builds, combined Bellman-Ford,
        ad-hoc callers — gets serial-engine semantics, so results stay
        bitwise identical to the serial backend (documented degraded
        mode, see ``docs/PARALLEL.md``).
        """
        results = [fn(item) for item in items]
        self._account_work(items, results, work_fn)
        return results

    # ------------------------------------------------------ lifecycle
    @property
    def shard_pools(self) -> List[Engine]:
        """The per-shard inner engines (created lazily, cached)."""
        if self._pools is None:
            self._pools = [
                self._make_pool(i) for i in range(self.partitions)
            ]
        return self._pools

    def _make_pool(self, index: int) -> Engine:
        if self.inner == "shm":
            from repro.parallel.backends.shm import SharedMemoryEngine

            pool: Engine = SharedMemoryEngine(
                threads=self.threads, **self.inner_options
            )
        else:
            pool = resolve_engine(
                self.inner, threads=self.threads, checked=False
            )
        # worker spans/metrics merged from this pool carry the shard
        # index, so per-shard series stay separable in exports
        labels = getattr(pool, "obs_labels", None)
        if isinstance(labels, dict):
            labels["shard"] = str(index)
        return pool

    def close(self) -> None:
        """Close every shard pool (workers, shared segments) and the
        shard-driver thread pool.  Idempotent; the engine respawns
        pools lazily if used again."""
        if self._pools is not None:
            for pool in self._pools:
                closer = getattr(pool, "close", None)
                if callable(closer):
                    closer()
            # drop the closed pools so a reused engine respawns fresh
            # ones (and a second close() never re-walks dead engines)
            self._pools = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PartitionedEngine(partitions={self.partitions}, "
            f"inner={self.inner!r}, threads={self.threads})"
        )

    # ------------------------------------------------- sharding state
    def _assignment_for(self, snapshot: CSRGraph) -> IntArray:
        if self._assignment is not None:
            if self._assignment.shape[0] != snapshot.n:
                raise EngineError(
                    f"explicit assignment covers "
                    f"{self._assignment.shape[0]} vertices, graph has "
                    f"{snapshot.n}"
                )
            return self._assignment
        part = partition_by_ranges(snapshot.n, self.partitions)
        if self.partition_mode == "edgecut":
            part = refine_partition_greedy(snapshot, part)
        return part

    def _build_plan(self, snapshot: CSRGraph) -> _Plan:
        part = self._assignment_for(snapshot)
        shards = build_shards(snapshot, part, parts=self.partitions)
        cut = partition_edgecut(snapshot, part)
        return _Plan(part, shards, id(snapshot), snapshot.uid, snapshot.n, cut)

    def _sync_plan(self, snapshot: CSRGraph, batch: "ChangeBatch") -> _Plan:
        """Bring the shard sub-CSRs up to date with ``snapshot``.

        Same snapshot object at the batch's stamp → no-op (e.g. MOSP
        re-enters once per objective with one batch); stamps moved →
        route the batch's records into the owning shards (rebuilding a
        shard from scratch only when an insert introduces a ghost it
        has never seen); anything unrecognised → full rebuild.
        """
        state = (snapshot.uid, snapshot.base_version, snapshot.tail_version)
        plan = self._plan
        if (
            plan is None
            or plan.source_id != id(snapshot)
            or plan.uid != snapshot.uid
            or plan.n != snapshot.n
        ):
            plan = self._build_plan(snapshot)
        elif plan.synced != state:
            self._apply_batch_to_plan(plan, batch, snapshot)
            total = sum(sh.csr.num_edges for sh in plan.shards)
            if total != snapshot.num_edges:
                # the snapshot changed by more than the batch — resync
                plan = self._build_plan(snapshot)
        plan.synced = state
        self._plan = plan
        return plan

    def _apply_batch_to_plan(
        self, plan: _Plan, batch: "ChangeBatch", snapshot: CSRGraph
    ) -> None:
        """Incremental twin of :meth:`CSRGraph.apply_batch`, routed per
        record to the shard owning the edge's destination."""
        from repro.dynamic.changes import KIND_DELETE, KIND_INSERT

        part = plan.part
        shards = plan.shards
        kind = np.asarray(batch.kind)
        bsrc = np.asarray(batch.src, dtype=np.int64)
        bdst = np.asarray(batch.dst, dtype=np.int64)
        bw = np.asarray(batch.weights)
        dirty: Set[int] = set()
        b = int(kind.shape[0])
        i = 0
        while i < b:
            j = i + 1
            while j < b and kind[j] == kind[i]:
                j += 1
            code = int(kind[i])
            rs, rd, rw = bsrc[i:j], bdst[i:j], bw[i:j]
            owners = part[rd]
            for p in np.unique(owners).tolist():
                sel = owners == p
                sh = shards[p]
                ls = sh.g2l[rs[sel]]
                ld = sh.g2l[rd[sel]]
                if code == KIND_INSERT:
                    if bool((ls < 0).any()):
                        dirty.add(p)  # unseen ghost source: rebuild
                    elif p not in dirty:
                        sh.csr.append_edges(ls, ld, rw[sel])
                elif p not in dirty:
                    # deletions / weight changes target existing edges;
                    # unmapped sources simply mean "no such edge here"
                    ok = ls >= 0
                    if bool(ok.any()):
                        if code == KIND_DELETE:
                            sh.csr.delete_edges(ls[ok], ld[ok])
                        else:
                            sh.csr.update_edge_weights(
                                ls[ok], ld[ok], rw[sel][ok]
                            )
            if code == KIND_INSERT:
                # a new cut edge promotes its source to the boundary of
                # the source's owner (rebuilds recompute this anyway)
                so = part[rs]
                cutsel = so != owners
                for u, q in zip(rs[cutsel].tolist(), so[cutsel].tolist()):
                    sq = shards[q]
                    sq.boundary.add(int(sq.g2l[u]))
            i = j
        if dirty:
            src, dst, w = live_edge_arrays(snapshot)
            for p in sorted(dirty):
                plan.shards[p] = build_shard(
                    p, snapshot.n, src, dst, w, plan.part, snapshot.k
                )

    def _resolve_snapshot(
        self,
        graph: "DiGraph",
        batch: "ChangeBatch",
        csr: Optional[CSRGraph],
    ) -> CSRGraph:
        """The post-batch CSR snapshot to shard: the caller's, when
        given, else an internally maintained incremental one."""
        n = graph.num_vertices
        if csr is not None:
            if csr.n != n:
                raise AlgorithmError(
                    f"CSR snapshot spans {csr.n} vertices, graph has {n}"
                )
            if csr.num_edges != graph.num_edges:
                raise AlgorithmError(
                    f"CSR snapshot has {csr.num_edges} edges, graph has "
                    f"{graph.num_edges}: pair batch.apply_to(graph) with "
                    f"snapshot.apply_batch(batch) to keep them in sync"
                )
            return csr
        own = self._own_csr
        token = (id(batch), int(batch.num_changes))
        if own is None or own.n != n:
            own = CSRGraph.from_digraph(graph)
        elif self._own_token == token and own.num_edges == graph.num_edges:
            pass  # same batch re-entered (one call per MOSP objective)
        else:
            own.apply_batch(batch)
            if own.num_edges != graph.num_edges:
                # the graph moved by more than this batch — re-freeze
                own = CSRGraph.from_digraph(graph)
        self._own_csr = own
        self._own_token = token
        return own

    # ------------------------------------------------ update drivers
    def partitioned_sosp_update(
        self,
        graph: "DiGraph",
        tree: "SOSPTree",
        batch: "ChangeBatch",
        csr: Optional[CSRGraph] = None,
        check_ownership: bool = False,
    ) -> "MixedUpdateStats":
        """Partitioned Algorithm 1 (insert-only batches).

        Insert-only batches are the empty-dirty-set special case of the
        mixed pipeline — Step D finds nothing, Step I seeds the
        normalised insertions — so one driver serves both entry points
        (``MixedUpdateStats`` extends ``UpdateStats``).
        """
        return self.partitioned_mixed_update(
            graph, tree, batch, csr=csr, check_ownership=check_ownership
        )

    def partitioned_mixed_update(
        self,
        graph: "DiGraph",
        tree: "SOSPTree",
        batch: "ChangeBatch",
        csr: Optional[CSRGraph] = None,
        check_ownership: bool = False,
    ) -> "MixedUpdateStats":
        """Partitioned fully dynamic update: invalidate globally, seed
        per shard, then superstep local fixpoints + boundary exchange
        until no shard emits.  Mutates ``tree`` in place exactly like
        :func:`repro.core.fully_dynamic.apply_mixed_batch`."""
        # deferred: repro.core imports repro.parallel at module load
        import repro.core.kernels as kernels
        from repro.core.fully_dynamic import (
            MixedUpdateStats,
            _gather_stimuli,
            _invalidate,
            _publish_mixed_stats,
        )
        from repro.core.sosp_update import UpdateStats
        from repro.parallel.atomics import OwnershipTracker

        stats = MixedUpdateStats()
        tracer = get_tracer()
        met = get_metrics()
        snapshot = self._resolve_snapshot(graph, batch, csr)
        plan = self._sync_plan(snapshot, batch)
        shards = plan.shards
        pools = self.shard_pools
        dist = tree.dist
        parent = tree.parent
        objective = tree.objective

        # ------------------------------------------------ Step D
        with tracer.span(
            "partitioned.invalidate",
            deletions=int(batch.num_deletions),
            weight_changes=int(batch.num_weight_changes),
        ) as sp_inv:
            dirty = _invalidate(graph, tree, batch, stats)
            for v in dirty:
                dist[v] = INF
                parent[v] = NO_PARENT
            sp_inv.set(invalidated=len(dirty))
        stats.step_seconds["invalidate"] = sp_inv.elapsed
        stats.touched_vertices |= dirty

        # ------------------------------------------------ Step I
        trackers: List[Optional[OwnershipTracker]] = [
            OwnershipTracker() if check_ownership else None for _ in shards
        ]
        with tracer.span(
            "partitioned.seed", partitions=len(shards),
            cut_edges=plan.cut_edges,
        ) as sp_seed:
            s_src, s_dst, s_w = _gather_stimuli(
                graph, batch, dirty, objective, snapshot
            )
            stats.seed_stimuli = int(s_src.size)
            # ghost copies load the post-invalidation global state
            runs = [_ShardRun(sh, dist, parent.dtype) for sh in shards]
            owners = plan.part[s_dst] if s_dst.size else _EMPTY_I

            def seed_one(i: int) -> Tuple[int, int]:
                run = runs[i]
                sh = run.shard
                sel = owners == sh.index
                if not bool(sel.any()):
                    return 0, 0
                ls = sh.g2l[s_src[sel]]
                ld = sh.g2l[s_dst[sel]]
                lw = s_w[sel]
                # tombstoned boundary rows carry inf weights and may
                # reference sources outside the shard; neither can
                # improve anything, so dropping them preserves the
                # single-pool seed result bit for bit
                keep = np.isfinite(lw) & (ls >= 0) & (ld >= 0)
                if not bool(keep.all()):
                    ls, ld, lw = ls[keep], ld[keep], lw[keep]
                if ls.size == 0:
                    return 0, 0
                affected, scanned = kernels.relax_batch_groups(
                    ls, ld, lw, run.dist, run.parent, run.marked,
                    engine=pools[i], tracker=trackers[i],
                )
                run.pending = affected
                return int(affected.size), int(scanned)

            seeded = self._run_shard_phase(
                [self._bind(seed_one, i) for i in range(len(shards))]
            )
            n_affected = sum(a for a, _ in seeded)
            stats.relaxations += sum(s for _, s in seeded)
            sp_seed.set(stimuli=stats.seed_stimuli, affected=n_affected)
        stats.step_seconds["seed"] = sp_seed.elapsed
        stats.step1_passes = 1
        stats.affected_initial = n_affected
        stats.affected_total = n_affected

        # --------------------------------- supersteps + exchange loop
        supersteps = 0
        messages = 0
        deliveries = 0
        with tracer.span(
            "partitioned.propagate", partitions=len(shards),
        ) as sp_prop:
            while True:
                active = [i for i, r in enumerate(runs) if r.pending.size]
                if active:
                    supersteps += 1
                    n_seeds = sum(int(runs[i].pending.size) for i in active)
                    with tracer.span(
                        "partitioned.superstep", superstep=supersteps,
                        shards=len(active), seeds=n_seeds,
                    ):

                        def prop_one(i: int) -> "UpdateStats":
                            run = runs[i]
                            seeds = run.pending
                            run.pending = _EMPTY_I
                            st = UpdateStats()
                            kernels.propagate_csr(
                                run.shard.csr, run.dist, run.parent,
                                run.marked, seeds, objective=objective,
                                engine=pools[i], stats=st,
                                tracker=trackers[i],
                            )
                            return st

                        for st in self._run_shard_phase(
                            [self._bind(prop_one, i) for i in active]
                        ):
                            stats.iterations += st.iterations
                            stats.relaxations += st.relaxations
                            stats.affected_total += st.affected_total
                            stats.frontier_sizes.extend(st.frontier_sizes)

                emit_g: List[IntArray] = []
                emit_d: List[FloatArray] = []
                for run in runs:
                    gs, ds = run.emit()
                    if gs.size:
                        emit_g.append(gs)
                        emit_d.append(ds)
                if not emit_g:
                    break
                gs = np.concatenate(emit_g)
                ds = np.concatenate(emit_d)
                delivered = 0
                with tracer.span(
                    "partitioned.exchange", superstep=supersteps,
                    messages=int(gs.size),
                ) as sp_x:
                    for run in runs:
                        sh = run.shard
                        lid = sh.g2l[gs]
                        ghost = lid >= sh.n_owned  # own/absent excluded
                        if not bool(ghost.any()):
                            continue
                        lids = lid[ghost]
                        dv = ds[ghost]
                        better = dv < run.dist[lids]
                        if not bool(better.any()):
                            continue
                        tl = lids[better]
                        run.dist[tl] = dv[better]
                        run.marked[tl] = 1
                        run.pending = tl
                        delivered += int(tl.size)
                    sp_x.set(deliveries=delivered)
                messages += int(gs.size)
                deliveries += delivered
                if met.enabled:
                    met.histogram(
                        "partitioned_exchange_messages",
                        "boundary messages per exchange phase",
                    ).observe(float(gs.size))
                if delivered == 0:
                    break
        stats.step_seconds["propagate"] = sp_prop.elapsed

        # --------------------------------------------- gather results
        for run in runs:
            sh = run.shard
            changed = np.flatnonzero(run.marked[: sh.n_owned])
            if changed.size == 0:
                continue
            gl = sh.l2g[changed]
            dist[gl] = run.dist[changed]
            lp = run.parent[changed]
            if int(lp.min(initial=0)) < 0:  # pragma: no cover - invariant
                raise AlgorithmError(
                    "internal error: marked vertex without a parent"
                )
            parent[gl] = sh.l2g[lp]
            stats.affected_vertices.update(int(v) for v in gl)
        stats.touched_vertices |= stats.affected_vertices

        self.last_exchange_stats = {
            "supersteps": supersteps,
            "messages": messages,
            "deliveries": deliveries,
        }
        if met.enabled:
            met.counter(
                "boundary_messages_total",
                "boundary dist improvements exchanged between shards",
            ).inc(messages)
            met.counter(
                "partitioned_supersteps_total",
                "local-fixpoint supersteps across partitioned updates",
            ).inc(supersteps)
        _publish_mixed_stats(stats, batch)
        return stats

    # ---------------------------------------------------- shard pool
    @staticmethod
    def _bind(fn: Callable[[int], T], i: int) -> Callable[[], T]:
        return lambda: fn(i)

    def _run_shard_phase(self, thunks: List[Callable[[], T]]) -> List[T]:
        """Run one phase's shard tasks, concurrently when enabled.

        Each task gets a fresh copy of the current context so tracer
        spans opened inside shard threads parent correctly.  Results
        come back in shard order, so everything the master merges stays
        deterministic regardless of completion order.
        """
        if len(thunks) <= 1 or not self.parallel_shards:
            return [t() for t in thunks]
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.partitions,
                thread_name_prefix="repro-partitioned",
            )
        futures = [
            self._executor.submit(contextvars.copy_context().run, t)
            for t in thunks
        ]
        return [f.result() for f in futures]
