"""Real thread-pool engine with OpenMP-style dynamic chunk scheduling.

This is the faithful structural port of the paper's OpenMP
implementation: a fixed pool of worker threads pulls chunks of loop
iterations from a shared queue (``schedule(dynamic)``).  Under CPython
the GIL serialises pure-Python task bodies, so on pure-Python kernels
this engine demonstrates *correctness* of the parallel structure rather
than speedup; kernels that release the GIL inside numpy calls do
overlap.  Scalability *curves* are produced by
:class:`~repro.parallel.backends.simulated.SimulatedEngine`.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.parallel.api import BaseEngine

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["ThreadEngine"]


class ThreadEngine(BaseEngine):
    """Execute supersteps on a persistent ``ThreadPoolExecutor``.

    Parameters
    ----------
    threads:
        Pool size.
    chunk_size:
        Iterations per dynamically scheduled chunk; ``None`` picks
        ``max(1, n_items // (8 * threads))`` (the OpenMP guided-ish
        default that balances dispatch overhead against imbalance).
    """

    name = "threads"

    def __init__(self, threads: int = 4, chunk_size: Optional[int] = None) -> None:
        super().__init__(threads=threads)
        self._chunk_size = chunk_size
        self._pool: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.threads,
                    thread_name_prefix="repro-worker",
                )
            return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def __enter__(self) -> "ThreadEngine":
        self._ensure_pool()
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def parallel_for(
        self,
        items: Sequence[T],
        fn: Callable[[T], R],
        work_fn: Optional[Callable[[T, R], float]] = None,
    ) -> List[R]:
        n = len(items)
        if n == 0:
            return []
        if n == 1 or self.threads == 1:
            results = [fn(item) for item in items]
            self._account_work(items, results, work_fn)
            return results
        pool = self._ensure_pool()
        chunk = self._chunk_size or max(1, n // (8 * self.threads))
        results: List[Optional[R]] = [None] * n
        # dynamic scheduling: workers grab the next chunk index from a
        # shared counter, exactly like an OpenMP dynamic loop
        counter = {"next": 0}
        counter_lock = threading.Lock()

        def worker() -> None:
            while True:
                with counter_lock:
                    start = counter["next"]
                    if start >= n:
                        return
                    counter["next"] = start + chunk
                end = min(start + chunk, n)
                for i in range(start, end):
                    results[i] = fn(items[i])

        futures = [pool.submit(worker) for _ in range(self.threads)]
        for f in futures:
            f.result()  # propagate exceptions, implicit barrier
        self._account_work(items, results, work_fn)  # type: ignore[arg-type]
        return results  # type: ignore[return-value]
