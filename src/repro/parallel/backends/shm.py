"""Shared-memory process engine: persistent workers, planted arrays.

:class:`~repro.parallel.backends.processes.ProcessEngine` re-pickles
the task closure and its items on every superstep, so the vectorised
CSR kernels — whose tasks are closures over multi-megabyte arrays —
never actually run multicore: they hit the "not picklable" fallback.
This backend fixes the transport, not the kernels:

1.  The master **plants** each kernel array into a named
    ``multiprocessing.shared_memory`` segment (:meth:`plant`).  Plants
    are keyed by logical name (``"csr.rev_indices"``, ``"sosp.dist"``,
    ...) and carry an optional *fingerprint*: re-planting with an
    unchanged fingerprint is a no-op (zero copies), which is how the
    CSR base arrays survive the append-or-rebuild tail policy — a
    tail-only append keeps the
    :attr:`~repro.graph.csr.CSRGraph.base_stamp` and therefore the
    existing segments.
2.  A persistent ``spawn``-context pool attaches to segments **once**
    (pool initializer + a per-worker attach cache) and re-uses the
    mapping across supersteps.
3.  A superstep dispatches a :class:`~repro.parallel.api.SlabTask`:
    only the kernel *reference* (``"module:function"``), the segment
    catalog (names/dtypes/shapes — ~100 bytes per array), scalar
    params, and the ``(lo, hi)`` slab spans travel.  A guard pickler
    refuses to serialise any ndarray into a dispatch payload, so "zero
    per-superstep graph pickling" is enforced by construction, not by
    convention.

Workers write their slab's results directly into the planted output
arrays (``dist``/``parent``/``marked``); the paper's per-vertex
ownership guarantee — each index belongs to exactly one slab — makes
those writes race-free without locks, exactly as in §3.1.

Degraded modes (always loud, never wrong silently):

- generic ``parallel_for`` with an unpicklable closure → serial
  fallback with a one-time warning (same contract as ``ProcessEngine``);
- a worker process dying mid-superstep (``BrokenProcessPool``) → the
  pool is discarded and lazily re-created, the kernel's write set
  (:attr:`~repro.parallel.api.SlabTask.writes`; every catalog array
  when undeclared) is rolled back to a snapshot taken just before
  dispatch, and the superstep re-runs inline on the master's views.
  The rollback matters for correctness, not just hygiene: without it,
  writes applied before the crash (by the dead worker *or* by sibling
  chunks that completed) would no longer test as improvements on the
  re-run, so their vertices would silently drop out of the returned
  affected sets and downstream propagation.

Lifecycle: :meth:`close` drains the pool gracefully and unlinks every
segment; an ``atexit`` finalizer covers engines nobody closes.  The
engine is reusable after ``close()`` (pool and plants re-materialise
lazily) and ``close()`` is idempotent.
"""

from __future__ import annotations

import atexit
import importlib
import io
import itertools
import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context, shared_memory
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

import numpy as np

from repro.errors import EngineError
from repro.obs.collect import WorkerCapture, merge_reports, obs_header
from repro.obs.tracer import current_span
from repro.parallel.api import BaseEngine, SlabTask, slab_spans
from repro.parallel.backends.processes import (
    _chunk_bounds,
    _chunk_runner,
    _decode_parts,
    _TAG_RESULTS,
    _TAG_RESULTS_OBS,
    _TAG_UNPICKLABLE,
)

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["SharedMemoryEngine"]

#: Smallest segment ever allocated (shared memory cannot be 0 bytes,
#: and tiny plants grow in place up to this for free).
_MIN_SEGMENT_BYTES = 64

#: Worker-side attach cache bound: segments beyond this are closed
#: FIFO (replants that grow allocate fresh names, so a long-lived
#: worker would otherwise accumulate dead mappings).
_MAX_WORKER_SEGMENTS = 64

#: Unique segment-name source (per master process; the pid is also
#: embedded so concurrent test runs never collide).
_SEGMENT_SEQ = itertools.count(1)

# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------

#: name -> attached segment, cached for the worker's lifetime ("attach
#: once"): populated by the pool initializer and lazily afterwards.
_SEGMENTS: Dict[str, shared_memory.SharedMemory] = {}
#: Segments of the chunk currently executing — exempt from eviction.
#: Numpy does not keep the buffer of an ``np.ndarray(buffer=seg.buf)``
#: view exported (it releases the Py_buffer right after grabbing the
#: pointer), so closing a viewed segment would not fail loudly — the
#: view would silently dangle over unmapped memory.
_PINNED: set = set()
#: "module:qualname" -> resolved kernel callable.
_KERNELS: Dict[str, Callable[..., Any]] = {}


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to (or return the cached mapping of) a named segment.

    The cache is LRU: a hit re-inserts the entry at the hot end, so
    the long-lived CSR base segments (touched by every superstep) are
    never the eviction victims — plain FIFO would evict exactly those
    first once enough replant churn accumulated.  Eviction closes the
    coldest entry that is neither pinned by the chunk currently
    materialising its catalog (:data:`_PINNED` — its views would
    silently dangle) nor still exporting its buffer (``BufferError``
    on ``close()``); such entries are kept for a later eviction
    instead of failing or corrupting the superstep.
    """
    seg = _SEGMENTS.pop(name, None)
    if seg is None:
        seg = shared_memory.SharedMemory(name=name)
        # Attaching re-registers the segment with the resource tracker
        # (unconditionally on POSIX up to 3.12).  Pool workers share
        # the master's tracker process and its cache is a set, so the
        # duplicate registration is a no-op — do NOT unregister here:
        # that would remove the master's entry and break its unlink
        # accounting.
        while len(_SEGMENTS) >= _MAX_WORKER_SEGMENTS:
            evicted = False
            for old_name in list(_SEGMENTS):
                if old_name in _PINNED:
                    continue
                old = _SEGMENTS.pop(old_name)
                try:
                    old.close()
                except BufferError:
                    _SEGMENTS[old_name] = old  # still exported; defer
                    continue
                evicted = True
                break
            if not evicted:
                break  # everything evictable is in use; exceed the bound
    _SEGMENTS[name] = seg
    return seg


def _worker_init(segment_names: Tuple[str, ...]) -> None:
    """Pool initializer: attach to the already-planted segments once.

    Segments planted after the pool spawned are attached lazily by
    :func:`_attach_segment` on first use and then cached the same way.
    """
    _SEGMENTS.clear()
    _KERNELS.clear()
    for name in segment_names:
        try:
            _attach_segment(name)
        except FileNotFoundError:
            continue  # re-planted away before the worker spawned


def _resolve_kernel(ref: str) -> Callable[..., Any]:
    """Resolve a ``"module:qualname"`` :attr:`SlabTask.ref` (cached)."""
    fn = _KERNELS.get(ref)
    if fn is None:
        module_name, sep, qualname = ref.partition(":")
        if not sep or not module_name or not qualname:
            raise EngineError(
                f"bad SlabTask ref {ref!r}; expected 'module:qualname'"
            )
        obj: Any = importlib.import_module(module_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
        if not callable(obj):
            raise EngineError(f"SlabTask ref {ref!r} is not callable")
        fn = obj
        _KERNELS[ref] = fn
    return fn


def _run_slab_chunk(payload: bytes) -> bytes:
    """Executed in the worker: run a chunk of slab spans of one superstep.

    The payload carries only ``(ref, catalog, params, spans)`` — plus
    an observability header as a fifth element when the master's tracer
    is recording, in which case each slab runs under a
    :class:`~repro.obs.collect.WorkerCapture` task span and the reply
    piggybacks the worker's report on the ``b"O"`` tag.  The arrays are
    materialised as views over the attached segments.  The same
    tagged-reply protocol as
    :func:`~repro.parallel.backends.processes._chunk_runner` keeps
    payload decode failures from poisoning the pool.
    """
    try:
        parts = pickle.loads(payload)
        ref, catalog, params, spans = parts[:4]
        header = parts[4] if len(parts) > 4 else None
        fn = _resolve_kernel(ref)
        # Pin the catalog's segments for the duration of the chunk:
        # with > _MAX_WORKER_SEGMENTS names in one catalog, a later
        # attach in this comprehension could otherwise evict (close) a
        # segment an earlier view is already mapped over.
        _PINNED.update(name for name, _, _ in catalog.values())
        arrays = {
            logical: np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=_attach_segment(name).buf
            )
            for logical, (name, dtype, shape) in catalog.items()
        }
    except Exception as exc:  # repro: noqa(R003) - reported to master, which degrades loudly
        _PINNED.clear()
        return _TAG_UNPICKLABLE + pickle.dumps(repr(exc))
    try:
        if header is None:
            return _TAG_RESULTS + pickle.dumps(
                [fn(arrays, params, lo, hi) for lo, hi in spans]
            )
        with WorkerCapture(header) as cap:
            results = []
            for lo, hi in spans:
                with cap.task("worker.slab", kernel=ref, lo=lo, hi=hi):
                    results.append(fn(arrays, params, lo, hi))
            report = cap.report()
        return _TAG_RESULTS_OBS + pickle.dumps((results, report))
    finally:
        _PINNED.clear()


# ----------------------------------------------------------------------
# master side
# ----------------------------------------------------------------------


class _GuardPickler(pickle.Pickler):
    """Pickler that refuses to serialise ndarrays.

    Slab dispatch must move indices, never data — any ndarray reaching
    this pickler means an array leaked into ``params`` (or a kernel
    ref closed over one) instead of being planted.  Failing the
    superstep here turns "zero per-superstep graph pickling" from a
    performance hope into an enforced invariant.
    """

    def reducer_override(self, obj: Any) -> Any:
        if isinstance(obj, np.ndarray):
            raise EngineError(
                f"slab dispatch tried to pickle an ndarray of "
                f"{obj.nbytes} bytes; plant() it and pass its logical "
                f"name in SlabTask.arrays instead"
            )
        return NotImplemented


def _dumps_guarded(obj: Any) -> bytes:
    """``pickle.dumps`` through the ndarray guard."""
    buf = io.BytesIO()
    _GuardPickler(buf, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    return buf.getvalue()


class _Plant:
    """One planted array: its segment, current view, and bookkeeping."""

    __slots__ = ("segment", "capacity", "view", "fingerprint",
                 "generation", "copies")

    def __init__(self, segment: shared_memory.SharedMemory,
                 capacity: int) -> None:
        self.segment = segment
        self.capacity = capacity
        self.view: Optional[np.ndarray] = None
        self.fingerprint: Optional[Tuple[Any, ...]] = None
        self.generation = 0
        self.copies = 0


class SharedMemoryEngine(BaseEngine):
    """Execute slab supersteps over shared-memory-planted arrays.

    Parameters
    ----------
    threads:
        Number of spawn-context worker processes.
    min_dispatch_items:
        Slab supersteps smaller than this run inline on the master
        (dispatch costs ~a millisecond; tiny frontiers aren't worth
        it).  Tests pass ``1`` to force dispatch.
    min_items_per_process:
        Inline threshold of the generic ``parallel_for`` path, as in
        :class:`~repro.parallel.backends.processes.ProcessEngine`.

    Attributes
    ----------
    last_dispatch_bytes:
        Total payload bytes of the most recent *dispatched* slab
        superstep — the pickle-counting tests assert this stays
        catalog-sized (hundreds of bytes) regardless of array sizes.
    last_obs_bytes:
        Serialized bytes of the worker observability reports
        piggybacked on the most recent dispatched superstep's replies;
        ``0`` whenever the tracer is not recording (the reply payloads
        are then byte-identical to the pre-collection protocol).
    last_superstep_recovery:
        True when the most recent superstep lost a worker process
        (``BrokenProcessPool``) and re-ran inline after rollback —
        :class:`~repro.obs.engine.TracedEngine` stamps the superstep
        span with ``recovery=true`` from this.
    last_slab_spans:
        The ``(lo, hi)`` spans of the most recent slab superstep
        (traced wrappers read it to reconstruct work distributions).
    dispatched_supersteps, inline_supersteps:
        Counters over slab supersteps.
    """

    name = "shm"
    #: Advertises the :func:`~repro.parallel.api.parallel_for_slabs`
    #: fast path (checked/traced wrappers forward it via delegation).
    supports_slab_dispatch = True
    #: Workers ship spans/metrics back piggybacked on the tagged reply
    #: (see :mod:`repro.obs.collect`); ``repro info`` surfaces this.
    worker_spans = "collected"

    def __init__(
        self,
        threads: int = 2,
        min_dispatch_items: int = 2048,
        min_items_per_process: int = 1,
    ) -> None:
        super().__init__(threads=threads)
        self.min_dispatch_items = int(min_dispatch_items)
        self.min_items_per_process = int(min_items_per_process)
        self.last_dispatch_bytes = 0
        self.last_obs_bytes = 0
        self.last_superstep_recovery = False
        self.last_slab_spans: List[Tuple[int, int]] = []
        self.dispatched_supersteps = 0
        self.inline_supersteps = 0
        self._plants: Dict[str, _Plant] = {}
        self._pool: Optional[ProcessPoolExecutor] = None
        self._leaked_segments: List[shared_memory.SharedMemory] = []
        self._warned = False
        self._atexit_registered = False
        # segments may only be unlinked by the process that created
        # them: a forked child inherits this engine object (and its
        # atexit finalizer) with segment names that belong to the
        # parent — unlinking from the child would tear down the
        # parent's live state underneath it
        self._owner_pid = os.getpid()
        self._snapshot_key: Optional[Tuple[Any, ...]] = None
        self._snapshot: Optional[Dict[str, np.ndarray]] = None
        self.snapshot_exports = 0
        self.snapshot_copies = 0

    # ------------------------------------------------------- lifecycle
    def _ensure_finalizer(self) -> None:
        if not self._atexit_registered:
            atexit.register(self.close)
            self._atexit_registered = True

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.threads,
                mp_context=get_context("spawn"),
                initializer=_worker_init,
                initargs=(
                    tuple(p.segment.name for p in self._plants.values()),
                ),
            )
            self._ensure_finalizer()
        return self._pool

    def _reset_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def close(self) -> None:
        """Drain the pool and unlink every planted segment (idempotent).

        The engine stays usable afterwards: the pool and any re-planted
        arrays come back lazily on the next superstep.  Teardown is
        strictly per-instance: each engine only ever unlinks segments
        it created itself, and only from the process that created them
        — a forked child (or a second engine's finalizer running at
        interpreter exit) can never unlink this engine's live
        segments.
        """
        owner = os.getpid() == self._owner_pid
        if self._pool is not None:
            if owner:
                # pool workers are this process's children; a forked
                # child must drop the handle without joining them
                self._pool.shutdown(wait=True)
            self._pool = None
        for rec in self._plants.values():
            self._release(rec, unlink=owner)
        self._plants.clear()
        self._snapshot_key = None
        self._snapshot = None
        if self._atexit_registered:
            atexit.unregister(self.close)
            self._atexit_registered = False

    def _release(self, rec: _Plant, unlink: bool = True) -> None:
        rec.view = None
        if unlink:
            try:
                rec.segment.unlink()
            except FileNotFoundError:  # repro: noqa(R003) - already-unlinked name; double release must stay safe
                pass
        try:
            rec.segment.close()
        except BufferError:
            # a caller still holds a view into the segment; the name is
            # already unlinked, so keep the mapping alive until process
            # exit instead of failing a routine close()
            self._leaked_segments.append(rec.segment)

    def __enter__(self) -> "SharedMemoryEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ---------------------------------------------------------- plants
    @staticmethod
    def _segment_name() -> str:
        return f"repro_{os.getpid()}_{next(_SEGMENT_SEQ)}"

    def plant(
        self,
        name: str,
        array: np.ndarray,
        fingerprint: Optional[Tuple[Any, ...]] = None,
    ) -> np.ndarray:
        """Publish ``array`` under ``name``; return the shared view.

        The returned ndarray is backed by the shared segment: master
        writes are visible to workers and vice versa.  With a
        ``fingerprint`` that matches the previous plant of ``name``
        (same dtype/shape), the existing segment is returned without
        copying — the incremental re-plant path for CSR base arrays.
        Otherwise the data is copied in, reusing the segment in place
        when its capacity suffices and allocating a fresh (power-of-
        two-sized) segment when it does not.
        """
        arr = np.ascontiguousarray(array)
        rec = self._plants.get(name)
        if (
            rec is not None
            and rec.view is not None
            and fingerprint is not None
            and rec.fingerprint == fingerprint
            and rec.view.dtype == arr.dtype
            and rec.view.shape == arr.shape
        ):
            return rec.view
        nbytes = int(arr.nbytes)
        if rec is None or rec.capacity < nbytes:
            if rec is not None:
                self._release(rec, unlink=os.getpid() == self._owner_pid)
            capacity = max(
                _MIN_SEGMENT_BYTES, 1 << max(0, nbytes - 1).bit_length()
            )
            segment = shared_memory.SharedMemory(
                create=True, size=capacity, name=self._segment_name()
            )
            rec = _Plant(segment, capacity)
            self._plants[name] = rec
            self._ensure_finalizer()
        rec.view = np.ndarray(arr.shape, dtype=arr.dtype,
                              buffer=rec.segment.buf)
        np.copyto(rec.view, arr, casting="no")
        rec.fingerprint = fingerprint
        rec.generation += 1
        rec.copies += 1
        return rec.view

    @property
    def plant_stats(self) -> Dict[str, Dict[str, Any]]:
        """Per-plant bookkeeping (tests and the bench report read this)."""
        return {
            name: {
                "segment": rec.segment.name,
                "capacity": rec.capacity,
                "generation": rec.generation,
                "copies": rec.copies,
                "fingerprint": rec.fingerprint,
            }
            for name, rec in self._plants.items()
        }

    # -------------------------------------------------- MVCC snapshots
    def publish_snapshot(
        self,
        arrays: Mapping[str, np.ndarray],
        stamp: Tuple[Any, ...],
    ) -> Dict[str, np.ndarray]:
        """Immutable, epoch-publishable copies of ``arrays``, keyed on
        ``stamp``.

        ``stamp`` plays the same role fingerprints play for
        :meth:`plant`: it names the graph state the arrays were
        computed against (callers pass the CSR ``tail_stamp``).  While
        the stamp is unchanged since the previous export, the cached
        read-only arrays are returned without copying — repeated
        snapshot reads between update batches are zero-copy.  A new
        stamp copies each array once and freezes it
        (``writeable=False``), so a published snapshot can never
        observe a later in-place update — the torn-read guarantee the
        always-on service builds its epochs on.
        """
        names = tuple(sorted(arrays))
        key = (names, stamp)
        if self._snapshot is not None and self._snapshot_key == key:
            self.snapshot_exports += 1
            return self._snapshot
        out: Dict[str, np.ndarray] = {}
        for name in names:
            frozen = np.array(arrays[name], copy=True)
            frozen.setflags(write=False)
            out[name] = frozen
        self._snapshot_key = key
        self._snapshot = out
        self.snapshot_exports += 1
        self.snapshot_copies += 1
        return out

    # ----------------------------------------------------- slab path
    def parallel_for_slabs(
        self,
        n_items: int,
        task: SlabTask,
        work_fn: Optional[Callable[[Tuple[int, int], Any], float]] = None,
        min_chunk: int = 1,
    ) -> List[Any]:
        """One slab superstep dispatched by reference (see module doc)."""
        spans = slab_spans(n_items, self, min_chunk)
        self.last_slab_spans = spans
        self.last_obs_bytes = 0
        self.last_superstep_recovery = False
        if not spans:
            return []
        missing = [a for a in task.arrays if a not in self._plants]
        if missing:
            raise EngineError(
                f"SlabTask references unplanted arrays {missing}; call "
                f"plant() before dispatching"
            )
        fn = _resolve_kernel(task.ref)
        arrays = {a: self._plants[a].view for a in task.arrays}
        if (
            self.threads == 1
            or len(spans) == 1
            or n_items < self.min_dispatch_items
        ):
            self.inline_supersteps += 1
            results = [fn(arrays, task.params, lo, hi) for lo, hi in spans]
            self._account_work(spans, results, work_fn)
            return results
        catalog = {
            a: (
                self._plants[a].segment.name,
                arrays[a].dtype.str,
                arrays[a].shape,
            )
            for a in task.arrays
        }
        params = dict(task.params)
        header = obs_header()
        payloads = [
            _dumps_guarded(
                (task.ref, catalog, params, spans[clo:chi])
                if header is None
                else (task.ref, catalog, params, spans[clo:chi], header)
            )
            for clo, chi in _chunk_bounds(len(spans), self.threads)
        ]
        self.last_dispatch_bytes = sum(len(p) for p in payloads)
        self.dispatched_supersteps += 1
        # Pre-dispatch snapshot of the kernel's write set: recovery
        # must re-run against the exact state the crashed superstep
        # saw.  Re-running over already-mutated arrays would be
        # silently wrong — improvements applied before the crash (by
        # the dead worker or by completed sibling chunks) no longer
        # test as improvements, so the re-run would omit them from its
        # returned results (e.g. drop vertices from an affected set).
        rollback = {
            a: np.array(arrays[a], copy=True)
            for a in (task.arrays if task.writes is None else task.writes)
        }
        try:
            pool = self._ensure_pool()
            futures = [pool.submit(_run_slab_chunk, p) for p in payloads]
            parts = [f.result() for f in futures]
        except BrokenProcessPool:
            self._reset_pool()
            self.last_superstep_recovery = True
            self._warn_once(
                "a worker process died mid-superstep; pool reset, "
                "write set rolled back, re-running the superstep inline"
            )
            for a, snap in rollback.items():
                np.copyto(arrays[a], snap, casting="no")
            results = [fn(arrays, task.params, lo, hi) for lo, hi in spans]
            self._account_work(spans, results, work_fn)
            return results
        results, error, reports = _decode_parts(parts)
        if header is not None and reports:
            self.last_obs_bytes = sum(len(pickle.dumps(r)) for r in reports)
            merge_reports(
                reports, header["t_send"], anchor=current_span(),
                labels=self.obs_labels or None,
            )
        if results is None:
            # make the failed superstep atomic: chunks that did run
            # have already written into the shared views
            for a, snap in rollback.items():
                np.copyto(arrays[a], snap, casting="no")
            raise EngineError(
                f"slab dispatch payload did not survive the spawn "
                f"round-trip: {error}"
            )
        self._account_work(spans, results, work_fn)
        return results

    # ----------------------------------------------------- generic path
    def _warn_once(self, reason: str) -> None:
        if not self._warned:
            warnings.warn(
                f"SharedMemoryEngine {reason}.",
                RuntimeWarning,
                stacklevel=4,
            )
            self._warned = True

    def _fallback(self, items: Sequence[T], fn: Callable[[T], R],
                  reason: str) -> List[R]:
        self._warn_once(f"{reason}; running serially")
        return [fn(item) for item in items]

    def parallel_for(
        self,
        items: Sequence[T],
        fn: Callable[[T], R],
        work_fn: Optional[Callable[[T, R], float]] = None,
    ) -> List[R]:
        n = len(items)
        if n == 0:
            return []
        self.last_superstep_recovery = False
        if self.threads == 1 or n < self.threads * self.min_items_per_process:
            results = [fn(item) for item in items]
            self._account_work(items, results, work_fn)
            return results
        chunks = [
            list(items[lo:hi]) for lo, hi in _chunk_bounds(n, self.threads)
        ]
        header = obs_header()
        try:
            payloads = [
                pickle.dumps(
                    (fn, chunk) if header is None else (fn, chunk, header)
                )
                for chunk in chunks
            ]
        except (pickle.PicklingError, AttributeError, TypeError):
            results = self._fallback(items, fn, "task is not picklable")
            self._account_work(items, results, work_fn)
            return results
        try:
            pool = self._ensure_pool()
            futures = [pool.submit(_chunk_runner, p) for p in payloads]
            parts = [f.result() for f in futures]
        except BrokenProcessPool:
            self._reset_pool()
            self.last_superstep_recovery = True
            results = self._fallback(
                items, fn, "a worker process died mid-superstep (pool reset)"
            )
            self._account_work(items, results, work_fn)
            return results
        out, error, reports = _decode_parts(parts)
        if header is not None and reports:
            merge_reports(
                reports, header["t_send"], anchor=current_span(),
                labels=self.obs_labels or None,
            )
        if out is None:
            out = self._fallback(
                items, fn,
                f"task did not survive the spawn round-trip ({error})",
            )
        self._account_work(items, out, work_fn)
        return out
