"""The serial engine: a plain loop, the reference semantics.

Every other backend must produce results element-wise equal to this
one (engines differ only in *how* the same independent tasks run).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, TypeVar

from repro.parallel.api import BaseEngine

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["SerialEngine"]


class SerialEngine(BaseEngine):
    """Run every superstep as a simple sequential loop."""

    name = "serial"

    def __init__(self) -> None:
        super().__init__(threads=1)

    def parallel_for(
        self,
        items: Sequence[T],
        fn: Callable[[T], R],
        work_fn: Optional[Callable[[T, R], float]] = None,
    ) -> List[R]:
        results = [fn(item) for item in items]
        self._account_work(items, results, work_fn)
        return results
