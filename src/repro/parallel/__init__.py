"""Parallel runtime substrate: pluggable execution engines.

The paper's implementation is C++/OpenMP on a dual 32-core EPYC.  In
CPython the GIL (and, in this reproduction environment, a single CPU
core) rules out *measuring* real shared-memory speedups, so the
algorithms in :mod:`repro.core` are written against an engine
abstraction with four interchangeable backends:

========================  =====================================================
:class:`SerialEngine`     plain loop; the baseline and the reference semantics
:class:`ThreadEngine`     a real ``ThreadPoolExecutor`` pool with OpenMP-style
                          dynamic chunk scheduling — the faithful structural
                          port of the paper's implementation (races and all,
                          were it not for vertex ownership)
:class:`ProcessEngine`    ``multiprocessing`` pool for embarrassingly parallel
                          stages (e.g. independent per-objective tree updates,
                          the hybrid parallelism of the paper's future work)
:class:`SharedMemoryEngine`  persistent ``spawn`` pool over
                          ``multiprocessing.shared_memory``-planted arrays;
                          supersteps dispatch :class:`~repro.parallel.api.SlabTask`
                          references and ``(lo, hi)`` slab indices only — the
                          GIL-free backend that actually runs the vectorised
                          CSR kernels multicore (see ``docs/PARALLEL.md``)
:class:`PartitionedEngine`  multi-pool model of the paper's distributed
                          deployment: the CSR is sharded into vertex
                          partitions, one inner engine pool (shm by
                          default) runs per shard, and dynamic updates
                          execute as supersteps of local fixpoints +
                          boundary exchange over the cut edges (see
                          ``docs/PARALLEL.md``)
:class:`SimulatedEngine`  a deterministic work-span machine model: the same
                          task graph is executed once, each task is charged
                          its reported work, and tasks are scheduled over
                          ``T`` virtual threads with dynamic chunking; the
                          makespan (plus barrier/scheduling overheads) is the
                          *virtual* wall time.  Thread-count sweeps over this
                          engine regenerate the paper's scalability figures
                          deterministically.
========================  =====================================================

All engines implement the :class:`~repro.parallel.api.Engine` protocol:
``parallel_for`` (one superstep: independent tasks + implicit barrier),
``map_reduce``, and ``charge`` (account serial work to the virtual
clock; a no-op outside the simulated engine).
"""

from repro.parallel.api import (
    Engine,
    SlabTask,
    engine_observability,
    parallel_for_slabs,
    resolve_engine,
    slab_spans,
)
from repro.parallel.atomics import OwnershipTracker
from repro.parallel.backends.partitioned import PartitionedEngine
from repro.parallel.backends.processes import ProcessEngine
from repro.parallel.backends.shm import SharedMemoryEngine
from repro.parallel.checked import CheckedEngine
from repro.parallel.backends.serial import SerialEngine
from repro.parallel.backends.simulated import (
    CostModel,
    SimulatedEngine,
    dynamic_makespan,
    replay_trace,
)
from repro.parallel.backends.threads import ThreadEngine
from repro.parallel.cost import WorkMeter

__all__ = [
    "Engine",
    "engine_observability",
    "resolve_engine",
    "slab_spans",
    "parallel_for_slabs",
    "SerialEngine",
    "ThreadEngine",
    "ProcessEngine",
    "PartitionedEngine",
    "SharedMemoryEngine",
    "SlabTask",
    "SimulatedEngine",
    "CostModel",
    "dynamic_makespan",
    "replay_trace",
    "WorkMeter",
    "OwnershipTracker",
    "CheckedEngine",
]
