"""Objective-priority helpers for the ensemble weighting.

§3.2's application scenario: a drone delivery system switches between
prioritising flying time and energy depending on the remaining energy
budget.  These helpers turn such domain state into the ``priorities``
vector accepted by :func:`~repro.core.ensemble.build_ensemble` /
:func:`~repro.core.mosp_update.mosp_update`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import AlgorithmError
from repro.types import DIST_DTYPE, FloatArray

__all__ = ["normalize_priorities", "budget_driven_priorities"]


def normalize_priorities(priorities: Sequence[float]) -> FloatArray:
    """Scale positive priorities so that they sum to 1."""
    p = np.asarray(priorities, dtype=DIST_DTYPE)
    if p.ndim != 1 or p.size == 0 or np.any(p <= 0):
        raise AlgorithmError(
            f"priorities must be a non-empty vector of positives, got "
            f"{priorities!r}"
        )
    return p / p.sum()


def budget_driven_priorities(
    estimated_costs: Sequence[float],
    budgets: Sequence[Optional[float]],
    pressure: float = 4.0,
) -> FloatArray:
    """Priorities that grow for objectives close to (or over) budget.

    The paper's drone scenario: if the fast route's energy cost exceeds
    the remaining battery (``c_f > B``), energy must dominate the
    route choice; with slack (``B > c_f``), time can lead.

    Each objective with a budget gets priority
    ``1 + pressure * max(0, cost/budget - slack_floor)`` where
    ``slack_floor = 0.5`` — i.e. priority rises once a route consumes
    more than half its budget and grows linearly past it.  Unbudgeted
    objectives (``None``) keep priority 1.

    Examples
    --------
    >>> p = budget_driven_priorities([30.0, 95.0], [None, 100.0])
    >>> p[1] > p[0]
    True
    """
    costs = np.asarray(estimated_costs, dtype=DIST_DTYPE)
    if len(budgets) != costs.size:
        raise AlgorithmError("costs and budgets must have equal length")
    if np.any(costs < 0):
        raise AlgorithmError("estimated costs must be non-negative")
    out = np.ones_like(costs)
    for i, b in enumerate(budgets):
        if b is None:
            continue
        if b <= 0:
            raise AlgorithmError(f"budget[{i}] must be positive, got {b}")
        utilisation = costs[i] / b
        out[i] = 1.0 + pressure * max(0.0, utilisation - 0.5)
    return out
