"""NumPy-vectorised CSR kernels for the Algorithm 1/2 hot loops.

The reference implementation of :func:`~repro.core.sosp_update.sosp_update`
relaxes edges by pointer-chasing a :class:`~repro.graph.digraph.DiGraph`
— one Python iterator step per edge.  This module re-expresses Step 1
(batch group relaxation) and Step 2 (affected-frontier propagation) as
*batched array kernels* over a :class:`~repro.graph.csr.CSRGraph`
snapshot:

- the in-edges of every frontier vertex are gathered with one
  concatenated reverse-CSR slice (:func:`gather_ranges`),
- candidate distances are computed for the whole frontier in one
  ``dist[preds] + w`` expression, masked by the *marked* predecessor
  flag,
- the per-vertex minimum and its witness predecessor come from a
  ``np.minimum.reduceat``-style segmented reduction
  (:func:`segmented_argmin`).

Parallel structure is preserved exactly: each engine superstep covers
the frontier with contiguous *slabs*
(:func:`~repro.parallel.api.parallel_for_slabs`), and each destination
vertex belongs to exactly one slab — the same vertex-ownership
guarantee the paper's per-vertex tasks give, just at array granularity.
Incremental :class:`CSRGraph` snapshots (base + COO tail) are consumed
directly; the tail contribution is merged per slab, so the kernels
survive dynamic batches without an O(|E|) re-freeze.

The kernels are certified against the pointer-chasing path and a full
Dijkstra recompute by the differential oracle in
``tests/test_kernels_differential.py``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # circular at runtime: sosp_update imports kernels
    from repro.core.sosp_update import UpdateStats

from repro.core.affected import gather_unique_neighbors_csr
from repro.graph.csr import CSRGraph
from repro.parallel.api import Engine, parallel_for_slabs, resolve_engine
from repro.parallel.atomics import OwnershipTracker, resolve_tracker
from repro.types import DIST_DTYPE, INF, NO_PARENT, VERTEX_DTYPE, FloatArray, IntArray

__all__ = [
    "gather_ranges",
    "segmented_argmin",
    "relax_batch_groups",
    "propagate_csr",
    "frontier_bellman_ford_csr",
]

#: Minimum frontier vertices (or Step-1 groups) per engine slab — below
#: this, per-task dispatch overhead dwarfs the vectorised body.
MIN_SLAB_ITEMS = 64


def gather_ranges(
    starts: IntArray, ends: IntArray
) -> Tuple[IntArray, IntArray]:
    """Concatenate the index ranges ``[starts[i], ends[i])``.

    Returns ``(idx, seg_starts)``: ``idx`` is the concatenation of all
    ranges (so ``arr[idx]`` gathers every range of ``arr`` in one
    call), and ``seg_starts`` is the ``(s+1,)`` boundary array of each
    range's slice inside ``idx``.  Empty ranges are allowed.
    """
    starts = np.asarray(starts, dtype=np.int64)
    ends = np.asarray(ends, dtype=np.int64)
    deg = ends - starts
    seg_starts = np.zeros(len(deg) + 1, dtype=np.int64)
    np.cumsum(deg, out=seg_starts[1:])
    total = int(seg_starts[-1])
    if total == 0:
        return np.empty(0, dtype=np.int64), seg_starts
    idx = np.arange(total, dtype=np.int64) + np.repeat(
        starts - seg_starts[:-1], deg
    )
    return idx, seg_starts


def segmented_argmin(
    values: FloatArray, seg_starts: IntArray
) -> Tuple[FloatArray, IntArray]:
    """Per-segment minimum and first-witness position.

    ``seg_starts`` bounds ``s`` contiguous segments of ``values`` (the
    layout :func:`gather_ranges` produces).  Returns ``(mins, arg)``
    where ``mins[i]`` is the segment minimum (``inf`` for empty
    segments) and ``arg[i]`` the global index into ``values`` of its
    first occurrence (``-1`` for empty segments).  Callers must gate on
    ``mins`` before trusting ``arg`` — a segment whose candidates are
    all ``inf`` reports an arbitrary inf witness.
    """
    s = len(seg_starts) - 1
    mins = np.full(s, INF, dtype=DIST_DTYPE)
    arg = np.full(s, -1, dtype=np.int64)
    if s == 0 or values.size == 0:
        return mins, arg
    nonempty = seg_starts[:-1] < seg_starts[1:]
    if not nonempty.any():
        return mins, arg
    # reduceat over the non-empty starts only: segments are contiguous,
    # so each non-empty segment runs exactly to the next non-empty
    # start (empty segments contribute no positions in between), and
    # the last one runs to the end of ``values``.  Feeding reduceat the
    # raw ``seg_starts[:-1]`` instead would be wrong twice over: an
    # empty trailing start equals ``values.size`` (out of range), and
    # clamping it truncates the *previous* segment's span.
    mins[nonempty] = np.minimum.reduceat(values, seg_starts[:-1][nonempty])
    seg_id = np.repeat(np.arange(s), np.diff(seg_starts))
    pos = np.flatnonzero(values == mins[seg_id])
    # seg_id[pos] is sorted, and every non-empty segment attains its
    # minimum, so searchsorted lands on each segment's first witness
    first = np.minimum(
        np.searchsorted(seg_id[pos], np.arange(s)), len(pos) - 1
    )
    arg[nonempty] = pos[first[nonempty]]
    return mins, arg


def relax_batch_groups(
    src: IntArray,
    dst: IntArray,
    w: FloatArray,
    dist: FloatArray,
    parent: IntArray,
    marked: IntArray,
    engine: Optional[Engine] = None,
    tracker: Optional[OwnershipTracker] = None,
) -> Tuple[IntArray, int]:
    """Vectorised Step 0 + Step 1: group the inserted edges by
    destination and relax each group to its minimum in one pass.

    The grouping is a stable argsort over ``dst`` (the array twin of
    the paper's hash grouping); each engine slab then owns a contiguous
    range of destination groups, computes every group's best candidate
    with one :func:`segmented_argmin`, and writes improved
    ``dist``/``parent``/``marked`` entries — race-free because a
    destination lives in exactly one slab.

    Returns ``(affected, scanned)``: the sorted array of improved
    vertices and the number of edge relaxations performed.
    """
    eng = resolve_engine(engine)
    tracker = resolve_tracker(tracker, eng)
    b = len(src)
    if b == 0:
        return np.empty(0, dtype=np.int64), 0
    order = np.argsort(dst, kind="stable")
    s_src = np.asarray(src, dtype=np.int64)[order]
    s_dst = np.asarray(dst, dtype=np.int64)[order]
    s_w = np.asarray(w, dtype=DIST_DTYPE)[order]
    cuts = np.flatnonzero(np.diff(s_dst)) + 1
    seg_starts = np.concatenate(([0], cuts, [b]))
    groups = s_dst[seg_starts[:-1]]
    nseg = len(groups)

    def run(lo: int, hi: int):
        a, bnd = int(seg_starts[lo]), int(seg_starts[hi])
        cand = dist[s_src[a:bnd]] + s_w[a:bnd]
        mins, arg = segmented_argmin(cand, seg_starts[lo : hi + 1] - a)
        vs = groups[lo:hi]
        improved = mins < dist[vs]
        vv = vs[improved]
        if len(vv):
            dist[vv] = mins[improved]
            parent[vv] = s_src[a:bnd][arg[improved]]
            marked[vv] = 1
            if tracker is not None:
                for v in vv:
                    tracker.record_write(int(v), lo)
        return vv, bnd - a

    results = parallel_for_slabs(
        eng, nseg, run,
        work_fn=lambda span, r: max(1, r[1]),
        min_chunk=MIN_SLAB_ITEMS,
    )
    affected = (
        np.concatenate([r[0] for r in results])
        if results else np.empty(0, dtype=np.int64)
    )
    return affected, int(sum(r[1] for r in results))


def propagate_csr(
    csr: CSRGraph,
    dist: FloatArray,
    parent: IntArray,
    marked: IntArray,
    affected: IntArray,
    objective: int = 0,
    engine: Optional[Engine] = None,
    stats: Optional["UpdateStats"] = None,
    tracker: Optional[OwnershipTracker] = None,
) -> None:
    """Vectorised Step 2: propagate the update through the affected
    subgraph until the frontier is empty.

    Per iteration: gather the unique out-neighbours ``N`` of the
    affected set (:func:`gather_unique_neighbors_csr`), then cover
    ``N`` with engine slabs; each slab pulls all *marked* predecessors
    of its frontier vertices through the reverse CSR in one gather,
    reduces per vertex with :func:`segmented_argmin`, merges candidates
    from the snapshot's incremental COO tail, and applies the improved
    distances.  Mutates ``dist``/``parent``/``marked`` in place.

    ``stats`` (duck-typed :class:`~repro.core.sosp_update.UpdateStats`)
    is updated when given; ``tracker`` hooks the vertex-ownership
    assertion exactly as the reference path does.
    """
    eng = resolve_engine(engine)
    tracker = resolve_tracker(tracker, eng)
    w_col = csr.weights[:, objective]
    affected = np.asarray(affected, dtype=np.int64)

    while affected.size:
        if tracker is not None:
            tracker.next_superstep()
        frontier = gather_unique_neighbors_csr(csr, affected)
        if stats is not None:
            stats.frontier_sizes.append(int(frontier.size))
            stats.iterations += 1
        if frontier.size == 0:
            break

        # tail edges landing on this frontier, grouped by frontier
        # position (tail is O(|batch|), so this stays cheap)
        if csr.num_tail_edges:
            pos = np.searchsorted(frontier, csr.tail_dst)
            pos_c = np.minimum(pos, frontier.size - 1)
            sel = frontier[pos_c] == csr.tail_dst
            t_seg = pos_c[sel]
            t_order = np.argsort(t_seg, kind="stable")
            t_seg = t_seg[t_order]
            t_src = csr.tail_src[sel][t_order]
            t_w = csr.tail_weights[sel, objective][t_order]
        else:
            t_seg = np.empty(0, dtype=np.int64)
            t_src = np.empty(0, dtype=np.int64)
            t_w = np.empty(0, dtype=DIST_DTYPE)

        def relax(lo: int, hi: int):
            f = frontier[lo:hi]
            idx, seg_starts = gather_ranges(
                csr.rev_indptr[f], csr.rev_indptr[f + 1]
            )
            scanned = int(idx.size)
            if idx.size:
                preds = csr.rev_indices[idx].astype(np.int64)
                cand = np.where(
                    marked[preds] == 1,
                    dist[preds] + w_col[csr.edge_perm[idx]],
                    INF,
                )
                mins, arg = segmented_argmin(cand, seg_starts)
                best_u = np.where(
                    arg >= 0, preds[np.maximum(arg, 0)], NO_PARENT
                )
            else:
                mins = np.full(len(f), INF, dtype=DIST_DTYPE)
                best_u = np.full(len(f), NO_PARENT, dtype=np.int64)
            # merge tail candidates for frontier positions [lo, hi)
            a, bnd = np.searchsorted(t_seg, [lo, hi])
            if bnd > a:
                ts, tw = t_src[a:bnd], t_w[a:bnd]
                tcand = np.where(marked[ts] == 1, dist[ts] + tw, INF)
                tbounds = np.searchsorted(
                    t_seg[a:bnd], np.arange(lo, hi + 1)
                )
                tmins, targ = segmented_argmin(tcand, tbounds)
                replace = tmins < mins
                mins = np.where(replace, tmins, mins)
                best_u = np.where(
                    replace, ts[np.maximum(targ, 0)], best_u
                )
                scanned += int(bnd - a)
            improved = mins < dist[f]
            vv = f[improved]
            if len(vv):
                dist[vv] = mins[improved]
                parent[vv] = best_u[improved]
                marked[vv] = 1
                if tracker is not None:
                    for v in vv:
                        tracker.record_write(int(v), lo)
            return vv, scanned

        results = parallel_for_slabs(
            eng, int(frontier.size), relax,
            work_fn=lambda span, r: max(1, r[1]),
            min_chunk=MIN_SLAB_ITEMS,
        )
        if stats is not None:
            stats.relaxations += sum(r[1] for r in results)
        affected = (
            np.concatenate([r[0] for r in results])
            if results else np.empty(0, dtype=np.int64)
        )
        if stats is not None:
            stats.affected_total += int(affected.size)
            stats.affected_vertices.update(affected.tolist())


def frontier_bellman_ford_csr(
    graph: CSRGraph,
    source: int,
    objective: int = 0,
    engine: Optional[Engine] = None,
) -> Tuple[FloatArray, IntArray]:
    """Frontier Bellman-Ford expressed through the Step-2 kernel.

    Initialising ``dist`` to ``inf`` everywhere but the source and
    seeding the affected set with the source alone makes
    :func:`propagate_csr` *be* a from-scratch SSSP solve — this is the
    vectorised Step-3 kernel :func:`~repro.core.mosp_update.mosp_update`
    runs on the combined graph when ``use_csr_kernels=True``.  Returns
    ``(dist, parent)`` in the :func:`~repro.sssp.dijkstra.dijkstra`
    convention.

    ``dist`` is exactly the fixpoint every other SSSP kernel computes.
    ``parent`` is one optimal witness per vertex; when several parents
    achieve the same distance this pull-based kernel picks the first in
    reverse-CSR order, whereas the push-based
    :func:`~repro.sssp.bellman_ford.frontier_bellman_ford` keeps the
    first arrival — both valid, not always the same vertex.
    """
    n = graph.n
    dist = np.full(n, INF, dtype=DIST_DTYPE)
    parent = np.full(n, NO_PARENT, dtype=VERTEX_DTYPE)
    marked = np.zeros(n, dtype=np.int8)
    dist[source] = 0.0
    marked[source] = 1
    propagate_csr(
        graph, dist, parent, marked,
        np.asarray([source], dtype=np.int64),
        objective=objective, engine=engine,
    )
    return dist, parent
