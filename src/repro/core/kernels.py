"""NumPy-vectorised CSR kernels for the Algorithm 1/2 hot loops.

The reference implementation of :func:`~repro.core.sosp_update.sosp_update`
relaxes edges by pointer-chasing a :class:`~repro.graph.digraph.DiGraph`
— one Python iterator step per edge.  This module re-expresses Step 1
(batch group relaxation) and Step 2 (affected-frontier propagation) as
*batched array kernels* over a :class:`~repro.graph.csr.CSRGraph`
snapshot:

- the in-edges of every frontier vertex are gathered with one
  concatenated reverse-CSR slice (:func:`gather_ranges`),
- candidate distances are computed for the whole frontier in one
  ``dist[preds] + w`` expression, masked by the *marked* predecessor
  flag,
- the per-vertex minimum and its witness predecessor come from a
  ``np.minimum.reduceat``-style segmented reduction
  (:func:`segmented_argmin`).

Parallel structure is preserved exactly: each engine superstep covers
the frontier with contiguous *slabs*
(:func:`~repro.parallel.api.parallel_for_slabs`), and each destination
vertex belongs to exactly one slab — the same vertex-ownership
guarantee the paper's per-vertex tasks give, just at array granularity.
Incremental :class:`CSRGraph` snapshots (base + COO tail) are consumed
directly; the tail contribution is merged per slab, so the kernels
survive dynamic batches without an O(|E|) re-freeze.

The kernels are certified against the pointer-chasing path and a full
Dijkstra recompute by the differential oracle in
``tests/test_kernels_differential.py``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # circular at runtime: sosp_update imports kernels
    from repro.core.sosp_update import UpdateStats

from repro.core.affected import gather_unique_neighbors_csr
from repro.graph.csr import CSRGraph
from repro.parallel.api import (
    Engine,
    SlabTask,
    parallel_for_slabs,
    resolve_engine,
)
from repro.parallel.atomics import OwnershipTracker, resolve_tracker
from repro.types import DIST_DTYPE, INF, NO_PARENT, VERTEX_DTYPE, FloatArray, IntArray

__all__ = [
    "gather_ranges",
    "segmented_argmin",
    "gather_in_edges_csr",
    "relax_batch_groups",
    "propagate_csr",
    "frontier_bellman_ford_csr",
]

#: Import ref of the Step-2 slab kernel, resolved inside shared-memory
#: workers.  A module constant (rather than an inline literal) so the
#: crash-recovery tests can monkeypatch in a kernel that dies
#: mid-superstep while delegating to the real one on the master.
_PROPAGATE_SLAB_REF = "repro.core.kernels:_propagate_relax_slab"

#: Minimum frontier vertices (or Step-1 groups) per engine slab — below
#: this, per-task dispatch overhead dwarfs the vectorised body.
MIN_SLAB_ITEMS = 64


def _supports_slab_plant(engine: Engine) -> bool:
    """True when the engine takes the shared-memory slab fast path.

    Checked/traced wrappers forward both the flag and ``plant``, so the
    test works through any wrapper stack; every other backend runs the
    closure fallback over the raw arrays, unchanged.
    """
    return bool(getattr(engine, "supports_slab_dispatch", False)) and callable(
        getattr(engine, "plant", None)
    )


def _publish(
    engine: Engine,
    planted: bool,
    arrays: Dict[str, np.ndarray],
    name: str,
    value: np.ndarray,
    fingerprint: Optional[Tuple[Any, ...]] = None,
) -> None:
    """Bind ``name`` for the next superstep: a shared-memory plant on a
    slab-dispatch engine (skipped entirely when ``fingerprint`` matches
    the previous plant — the incremental re-plant path for CSR base
    arrays), the raw array otherwise."""
    if planted:
        arrays[name] = engine.plant(name, value, fingerprint=fingerprint)
    else:
        arrays[name] = value


def _record_slab_writes(
    tracker: Optional[OwnershipTracker], results: Any
) -> None:
    """Register each slab's improved vertices with the ownership tracker.

    Recording happens on the master *after* the superstep barrier (the
    returned ``vv`` arrays identify every write) so the §3.1
    single-writer assertion works identically whether the slab ran in
    this process or in a shared-memory worker that cannot see the
    tracker.
    """
    if tracker is not None:
        for slab_idx, (vv, _) in enumerate(results):
            for v in vv:
                tracker.record_write(int(v), slab_idx)


def _relax_groups_slab(
    arrays: Mapping[str, np.ndarray],
    params: Mapping[str, Any],
    lo: int,
    hi: int,
) -> Tuple[IntArray, int]:
    """Slab kernel for Step 0/1: relax destination groups ``[lo, hi)``.

    All state arrives through ``arrays`` (the slab-kernel signature),
    so the same function body serves the closure fallback on the raw
    arrays and the shared-memory dispatch on planted views.  Each
    destination group lives in exactly one slab, making the in-place
    ``dist``/``parent``/``marked`` writes race-free.
    """
    seg_starts = arrays["step1.seg_starts"]
    s_src = arrays["step1.s_src"]
    s_w = arrays["step1.s_w"]
    groups = arrays["step1.groups"]
    dist = arrays["sosp.dist"]
    parent = arrays["sosp.parent"]
    marked = arrays["sosp.marked"]
    a, bnd = int(seg_starts[lo]), int(seg_starts[hi])
    cand = dist[s_src[a:bnd]] + s_w[a:bnd]
    mins, arg = segmented_argmin(cand, seg_starts[lo : hi + 1] - a)
    vs = groups[lo:hi]
    improved = mins < dist[vs]
    vv = vs[improved]
    if len(vv):
        dist[vv] = mins[improved]
        parent[vv] = s_src[a:bnd][arg[improved]]
        marked[vv] = 1
    return np.asarray(vv, dtype=np.int64), bnd - a


#: Array names :func:`_propagate_relax_slab` consumes (the
#: :class:`SlabTask` catalog of every Step-2 superstep).
_PROPAGATE_ARRAYS: Tuple[str, ...] = (
    "csr.rev_indptr",
    "csr.rev_indices",
    "csr.edge_perm",
    "csr.weights",
    "sosp.dist",
    "sosp.parent",
    "sosp.marked",
    "step2.frontier",
    "step2.t_seg",
    "step2.t_src",
    "step2.t_w",
)

#: Array names :func:`_relax_groups_slab` consumes.
_RELAX_GROUPS_ARRAYS: Tuple[str, ...] = (
    "step1.seg_starts",
    "step1.s_src",
    "step1.s_w",
    "step1.groups",
    "sosp.dist",
    "sosp.parent",
    "sosp.marked",
)

#: The arrays both slab kernels mutate — the crash-recovery write set
#: the shared-memory engine snapshots before dispatching a superstep
#: (everything else in the catalogs is read-only).
_SOSP_WRITES: Tuple[str, ...] = (
    "sosp.dist",
    "sosp.parent",
    "sosp.marked",
)


def _propagate_relax_slab(
    arrays: Mapping[str, np.ndarray],
    params: Mapping[str, Any],
    lo: int,
    hi: int,
) -> Tuple[IntArray, int]:
    """Slab kernel for Step 2: relax frontier positions ``[lo, hi)``.

    Pull-based: gathers every *marked* predecessor of its frontier
    vertices through the reverse CSR, reduces with
    :func:`segmented_argmin`, merges the snapshot's COO-tail candidates
    (pre-grouped by frontier position in ``step2.t_*``), and applies
    improved distances in place.  Frontier positions partition across
    slabs, so writes are single-owner by construction.
    """
    frontier = arrays["step2.frontier"]
    rev_indptr = arrays["csr.rev_indptr"]
    rev_indices = arrays["csr.rev_indices"]
    edge_perm = arrays["csr.edge_perm"]
    w_col = arrays["csr.weights"][:, int(params["objective"])]
    dist = arrays["sosp.dist"]
    parent = arrays["sosp.parent"]
    marked = arrays["sosp.marked"]
    t_seg = arrays["step2.t_seg"]
    t_src = arrays["step2.t_src"]
    t_w = arrays["step2.t_w"]

    f = frontier[lo:hi]
    idx, seg_starts = gather_ranges(rev_indptr[f], rev_indptr[f + 1])
    scanned = int(idx.size)
    if idx.size:
        preds = rev_indices[idx].astype(np.int64)
        cand = np.where(
            marked[preds] == 1,
            dist[preds] + w_col[edge_perm[idx]],
            INF,
        )
        mins, arg = segmented_argmin(cand, seg_starts)
        best_u = np.where(arg >= 0, preds[np.maximum(arg, 0)], NO_PARENT)
    else:
        mins = np.full(len(f), INF, dtype=DIST_DTYPE)
        best_u = np.full(len(f), NO_PARENT, dtype=np.int64)
    # merge tail candidates for frontier positions [lo, hi)
    a, bnd = np.searchsorted(t_seg, [lo, hi])
    if bnd > a:
        ts, tw = t_src[a:bnd], t_w[a:bnd]
        tcand = np.where(marked[ts] == 1, dist[ts] + tw, INF)
        tbounds = np.searchsorted(t_seg[a:bnd], np.arange(lo, hi + 1))
        tmins, targ = segmented_argmin(tcand, tbounds)
        replace = tmins < mins
        mins = np.where(replace, tmins, mins)
        best_u = np.where(replace, ts[np.maximum(targ, 0)], best_u)
        scanned += int(bnd - a)
    improved = mins < dist[f]
    vv = f[improved]
    if len(vv):
        dist[vv] = mins[improved]
        parent[vv] = best_u[improved]
        marked[vv] = 1
    return np.asarray(vv, dtype=np.int64), scanned


def gather_ranges(
    starts: IntArray, ends: IntArray
) -> Tuple[IntArray, IntArray]:
    """Concatenate the index ranges ``[starts[i], ends[i])``.

    Returns ``(idx, seg_starts)``: ``idx`` is the concatenation of all
    ranges (so ``arr[idx]`` gathers every range of ``arr`` in one
    call), and ``seg_starts`` is the ``(s+1,)`` boundary array of each
    range's slice inside ``idx``.  Empty ranges are allowed.
    """
    starts = np.asarray(starts, dtype=np.int64)
    ends = np.asarray(ends, dtype=np.int64)
    deg = ends - starts
    seg_starts = np.zeros(len(deg) + 1, dtype=np.int64)
    np.cumsum(deg, out=seg_starts[1:])
    total = int(seg_starts[-1])
    if total == 0:
        return np.empty(0, dtype=np.int64), seg_starts
    idx = np.arange(total, dtype=np.int64) + np.repeat(
        starts - seg_starts[:-1], deg
    )
    return idx, seg_starts


def segmented_argmin(
    values: FloatArray, seg_starts: IntArray
) -> Tuple[FloatArray, IntArray]:
    """Per-segment minimum and first-witness position.

    ``seg_starts`` bounds ``s`` contiguous segments of ``values`` (the
    layout :func:`gather_ranges` produces).  Returns ``(mins, arg)``
    where ``mins[i]`` is the segment minimum (``inf`` for empty
    segments) and ``arg[i]`` the global index into ``values`` of its
    first occurrence (``-1`` for empty segments).  Callers must gate on
    ``mins`` before trusting ``arg`` — a segment whose candidates are
    all ``inf`` reports an arbitrary inf witness.
    """
    s = len(seg_starts) - 1
    mins = np.full(s, INF, dtype=DIST_DTYPE)
    arg = np.full(s, -1, dtype=np.int64)
    if s == 0 or values.size == 0:
        return mins, arg
    nonempty = seg_starts[:-1] < seg_starts[1:]
    if not nonempty.any():
        return mins, arg
    # reduceat over the non-empty starts only: segments are contiguous,
    # so each non-empty segment runs exactly to the next non-empty
    # start (empty segments contribute no positions in between), and
    # the last one runs to the end of ``values``.  Feeding reduceat the
    # raw ``seg_starts[:-1]`` instead would be wrong twice over: an
    # empty trailing start equals ``values.size`` (out of range), and
    # clamping it truncates the *previous* segment's span.
    mins[nonempty] = np.minimum.reduceat(values, seg_starts[:-1][nonempty])
    seg_id = np.repeat(np.arange(s), np.diff(seg_starts))
    pos = np.flatnonzero(values == mins[seg_id])
    # seg_id[pos] is sorted, and every non-empty segment attains its
    # minimum, so searchsorted lands on each segment's first witness
    first = np.minimum(
        np.searchsorted(seg_id[pos], np.arange(s)), len(pos) - 1
    )
    arg[nonempty] = pos[first[nonempty]]
    return mins, arg


def gather_in_edges_csr(
    csr: CSRGraph, vertices: IntArray, objective: int = 0
) -> Tuple[IntArray, IntArray, FloatArray]:
    """All in-edges of ``vertices`` as ``(src, dst, weight)`` arrays.

    One concatenated reverse-CSR slice (:func:`gather_ranges`) plus a
    mask over the incremental COO tail — the vectorised gather the
    fully dynamic pipeline uses to seed invalidated vertices against
    their entire connection boundary.  Tombstoned rows come back with
    ``inf`` weights, which every downstream min-relaxation ignores.
    Order is deterministic: reverse-CSR rows per vertex, then tail rows
    in append order.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    if vertices.size == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=DIST_DTYPE),
        )
    idx, seg_starts = gather_ranges(
        csr.rev_indptr[vertices], csr.rev_indptr[vertices + 1]
    )
    src = csr.rev_indices[idx].astype(np.int64)
    dst = np.repeat(vertices, np.diff(seg_starts))
    w = csr.weights[csr.edge_perm[idx], objective]
    if csr.num_tail_edges:
        hit = np.isin(csr.tail_dst, vertices)
        if hit.any():
            src = np.concatenate((src, csr.tail_src[hit].astype(np.int64)))
            dst = np.concatenate((dst, csr.tail_dst[hit].astype(np.int64)))
            w = np.concatenate((w, csr.tail_weights[hit, objective]))
    return src, dst, w


def relax_batch_groups(
    src: IntArray,
    dst: IntArray,
    w: FloatArray,
    dist: FloatArray,
    parent: IntArray,
    marked: IntArray,
    engine: Optional[Engine] = None,
    tracker: Optional[OwnershipTracker] = None,
) -> Tuple[IntArray, int]:
    """Vectorised Step 0 + Step 1: group the inserted edges by
    destination and relax each group to its minimum in one pass.

    The grouping is a stable argsort over ``dst`` (the array twin of
    the paper's hash grouping); each engine slab then owns a contiguous
    range of destination groups, computes every group's best candidate
    with one :func:`segmented_argmin`, and writes improved
    ``dist``/``parent``/``marked`` entries — race-free because a
    destination lives in exactly one slab.

    Returns ``(affected, scanned)``: the sorted array of improved
    vertices and the number of edge relaxations performed.
    """
    eng = resolve_engine(engine)
    tracker = resolve_tracker(tracker, eng)
    b = len(src)
    if b == 0:
        return np.empty(0, dtype=np.int64), 0
    order = np.argsort(dst, kind="stable")
    s_src = np.asarray(src, dtype=np.int64)[order]
    s_dst = np.asarray(dst, dtype=np.int64)[order]
    s_w = np.asarray(w, dtype=DIST_DTYPE)[order]
    cuts = np.flatnonzero(np.diff(s_dst)) + 1
    seg_starts = np.concatenate(([0], cuts, [b]))
    groups = s_dst[seg_starts[:-1]]
    nseg = len(groups)

    planted = _supports_slab_plant(eng)
    arrays: Dict[str, np.ndarray] = {}
    _publish(eng, planted, arrays, "step1.seg_starts", seg_starts)
    _publish(eng, planted, arrays, "step1.s_src", s_src)
    _publish(eng, planted, arrays, "step1.s_w", s_w)
    _publish(eng, planted, arrays, "step1.groups", groups)
    _publish(eng, planted, arrays, "sosp.dist", dist)
    _publish(eng, planted, arrays, "sosp.parent", parent)
    _publish(eng, planted, arrays, "sosp.marked", marked)
    task = (
        SlabTask(
            ref="repro.core.kernels:_relax_groups_slab",
            arrays=_RELAX_GROUPS_ARRAYS,
            writes=_SOSP_WRITES,
        )
        if planted
        else None
    )

    def run(lo: int, hi: int):
        return _relax_groups_slab(arrays, {}, lo, hi)

    try:
        results = parallel_for_slabs(
            eng, nseg, run,
            work_fn=lambda span, r: max(1, r[1]),
            min_chunk=MIN_SLAB_ITEMS,
            task=task,
        )
    finally:
        # planted mode mutates the shared views; mirror them back even
        # when dispatch raises mid-Step-1, so partial (still-valid
        # monotone) relaxations reach the caller's arrays — the same
        # contract as propagate_csr's finally block
        if planted:
            np.copyto(dist, arrays["sosp.dist"])
            np.copyto(parent, arrays["sosp.parent"])
            np.copyto(marked, arrays["sosp.marked"])
    _record_slab_writes(tracker, results)
    affected = (
        np.concatenate([r[0] for r in results])
        if results else np.empty(0, dtype=np.int64)
    )
    return affected, int(sum(r[1] for r in results))


def propagate_csr(
    csr: CSRGraph,
    dist: FloatArray,
    parent: IntArray,
    marked: IntArray,
    affected: IntArray,
    objective: int = 0,
    engine: Optional[Engine] = None,
    stats: Optional["UpdateStats"] = None,
    tracker: Optional[OwnershipTracker] = None,
) -> None:
    """Vectorised Step 2: propagate the update through the affected
    subgraph until the frontier is empty.

    Per iteration: gather the unique out-neighbours ``N`` of the
    affected set (:func:`gather_unique_neighbors_csr`), then cover
    ``N`` with engine slabs; each slab pulls all *marked* predecessors
    of its frontier vertices through the reverse CSR in one gather,
    reduces per vertex with :func:`segmented_argmin`, merges candidates
    from the snapshot's incremental COO tail, and applies the improved
    distances.  Mutates ``dist``/``parent``/``marked`` in place.

    ``stats`` (duck-typed :class:`~repro.core.sosp_update.UpdateStats`)
    is updated when given; ``tracker`` hooks the vertex-ownership
    assertion exactly as the reference path does.
    """
    eng = resolve_engine(engine)
    tracker = resolve_tracker(tracker, eng)
    affected = np.asarray(affected, dtype=np.int64)

    planted = _supports_slab_plant(eng)
    arrays: Dict[str, np.ndarray] = {}
    # the frozen CSR base arrays are fingerprinted with the snapshot's
    # base_stamp: tail-only appends keep the stamp, so re-entering this
    # kernel after a dynamic batch re-plants nothing (zero copies)
    base_fp = csr.base_stamp
    _publish(eng, planted, arrays, "csr.rev_indptr", csr.rev_indptr, base_fp)
    _publish(eng, planted, arrays, "csr.rev_indices", csr.rev_indices, base_fp)
    _publish(eng, planted, arrays, "csr.edge_perm", csr.edge_perm, base_fp)
    _publish(eng, planted, arrays, "csr.weights", csr.weights, base_fp)
    _publish(eng, planted, arrays, "sosp.dist", dist)
    _publish(eng, planted, arrays, "sosp.parent", parent)
    _publish(eng, planted, arrays, "sosp.marked", marked)
    params = {"objective": int(objective)}
    task = (
        SlabTask(
            ref=_PROPAGATE_SLAB_REF,
            arrays=_PROPAGATE_ARRAYS,
            params=params,
            writes=_SOSP_WRITES,
        )
        if planted
        else None
    )

    try:
        while affected.size:
            if tracker is not None:
                tracker.next_superstep()
            frontier = gather_unique_neighbors_csr(csr, affected)
            if stats is not None:
                stats.frontier_sizes.append(int(frontier.size))
                stats.iterations += 1
            if frontier.size == 0:
                break

            # tail edges landing on this frontier, grouped by frontier
            # position (tail is O(|batch|), so this stays cheap)
            if csr.num_tail_edges:
                pos = np.searchsorted(frontier, csr.tail_dst)
                pos_c = np.minimum(pos, frontier.size - 1)
                sel = frontier[pos_c] == csr.tail_dst
                t_seg = pos_c[sel]
                t_order = np.argsort(t_seg, kind="stable")
                t_seg = t_seg[t_order]
                t_src = csr.tail_src[sel][t_order]
                t_w = csr.tail_weights[sel, objective][t_order]
            else:
                t_seg = np.empty(0, dtype=np.int64)
                t_src = np.empty(0, dtype=np.int64)
                t_w = np.empty(0, dtype=DIST_DTYPE)

            _publish(eng, planted, arrays, "step2.frontier", frontier)
            _publish(eng, planted, arrays, "step2.t_seg", t_seg)
            _publish(eng, planted, arrays, "step2.t_src", t_src)
            _publish(eng, planted, arrays, "step2.t_w", t_w)

            def relax(lo: int, hi: int):
                return _propagate_relax_slab(arrays, params, lo, hi)

            results = parallel_for_slabs(
                eng, int(frontier.size), relax,
                work_fn=lambda span, r: max(1, r[1]),
                min_chunk=MIN_SLAB_ITEMS,
                task=task,
            )
            _record_slab_writes(tracker, results)
            if stats is not None:
                stats.relaxations += sum(r[1] for r in results)
            affected = (
                np.concatenate([r[0] for r in results])
                if results else np.empty(0, dtype=np.int64)
            )
            if stats is not None:
                stats.affected_total += int(affected.size)
                stats.affected_vertices.update(affected.tolist())
    finally:
        # planted mode mutates the shared views; the caller's arrays are
        # the contract, so mirror the fixpoint back even on error
        if planted:
            np.copyto(dist, arrays["sosp.dist"])
            np.copyto(parent, arrays["sosp.parent"])
            np.copyto(marked, arrays["sosp.marked"])


def frontier_bellman_ford_csr(
    graph: CSRGraph,
    source: int,
    objective: int = 0,
    engine: Optional[Engine] = None,
) -> Tuple[FloatArray, IntArray]:
    """Frontier Bellman-Ford expressed through the Step-2 kernel.

    Initialising ``dist`` to ``inf`` everywhere but the source and
    seeding the affected set with the source alone makes
    :func:`propagate_csr` *be* a from-scratch SSSP solve — this is the
    vectorised Step-3 kernel :func:`~repro.core.mosp_update.mosp_update`
    runs on the combined graph when ``use_csr_kernels=True``.  Returns
    ``(dist, parent)`` in the :func:`~repro.sssp.dijkstra.dijkstra`
    convention.

    ``dist`` is exactly the fixpoint every other SSSP kernel computes.
    ``parent`` is one optimal witness per vertex; when several parents
    achieve the same distance this pull-based kernel picks the first in
    reverse-CSR order, whereas the push-based
    :func:`~repro.sssp.bellman_ford.frontier_bellman_ford` keeps the
    first arrival — both valid, not always the same vertex.
    """
    n = graph.n
    dist = np.full(n, INF, dtype=DIST_DTYPE)
    parent = np.full(n, NO_PARENT, dtype=VERTEX_DTYPE)
    marked = np.zeros(n, dtype=np.int8)
    dist[source] = 0.0
    marked[source] = 1
    propagate_csr(
        graph, dist, parent, marked,
        np.asarray([source], dtype=np.int64),
        objective=objective, engine=engine,
    )
    return dist, parent
