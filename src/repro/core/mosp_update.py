"""Algorithm 2: the single-MOSP update heuristic.

The full pipeline of §3.2, with per-step timing because the paper's
Figure 6 reports exactly this breakdown:

- **Step 1** — update every per-objective SOSP tree ``T_i`` with
  Algorithm 1 (sequentially over trees, as the paper's implementation
  does; the hybrid-parallel variant is the ``processes`` engine's
  territory).
- **Step 2** — build the combined graph
  (:func:`~repro.core.ensemble.build_ensemble`).
- **Step 3** — run a parallel Bellman-Ford over the combined graph
  ("we use a parallel Bellman-Ford algorithm implementation", §4) and
  re-assign the true multi-objective weights from ``G`` along the
  resulting tree to read off the MOSP distance vectors.

The result is one balanced (or priority-weighted) multi-objective
shortest path per destination — Pareto optimal whenever the per-
objective SOSP trees are unique (Theorems 1–3), and a certified-valid
path with per-objective cost ≥ the SOSP bound in general.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

import repro.core.kernels as kernels
from repro.core.ensemble import EnsembleGraph, build_ensemble
from repro.core.sosp_update import UpdateStats, sosp_update
from repro.core.tree import SOSPTree
from repro.dynamic.changes import ChangeBatch
from repro.errors import AlgorithmError, NotReachableError
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.parallel.api import Engine, resolve_engine
from repro.sssp.bellman_ford import frontier_bellman_ford, parallel_bellman_ford
from repro.types import DIST_DTYPE, INF, NO_PARENT, FloatArray, IntArray

__all__ = ["mosp_update", "MOSPResult"]


@dataclass
class MOSPResult:
    """Output of one :func:`mosp_update` call.

    Attributes
    ----------
    source:
        The common source of all trees.
    parent:
        ``(n,)`` parent array of the SOSP tree computed on the combined
        graph — the MOSP tree after real-weight reassignment.
    dist_vectors:
        ``(n, k)`` true multi-objective cost of each vertex's MOSP path
        (rows of ``inf`` for vertices outside the combined tree).
    ensemble:
        The combined graph (kept for inspection/ablation).
    update_stats:
        Per-tree Algorithm-1 stats from Step 1 (empty when no batch).
    step_seconds:
        Wall-clock seconds per pipeline step: keys ``"sosp_update_i"``
        for each objective ``i``, ``"ensemble"``, ``"bellman_ford"``,
        ``"reassign"`` — the Figure 6 breakdown.
    step_virtual_seconds:
        Same keys measured on the engine's virtual clock when the
        engine exposes one (``SimulatedEngine``); empty otherwise.
    """

    source: int
    parent: IntArray
    dist_vectors: FloatArray
    ensemble: EnsembleGraph
    update_stats: List[UpdateStats] = field(default_factory=list)
    step_seconds: Dict[str, float] = field(default_factory=dict)
    step_virtual_seconds: Dict[str, float] = field(default_factory=dict)

    def path_to(self, v: int) -> List[int]:
        """The MOSP path ``source → v``."""
        if not np.isfinite(self.dist_vectors[v]).all():
            raise NotReachableError(self.source, v)
        path = [v]
        while path[-1] != self.source:
            p = int(self.parent[path[-1]])
            if p == NO_PARENT:
                raise NotReachableError(self.source, v)
            path.append(p)
        path.reverse()
        return path

    def cost_to(self, v: int) -> FloatArray:
        """The ``k``-vector cost of the MOSP path to ``v``."""
        return self.dist_vectors[v]


def mosp_update(
    graph: DiGraph,
    trees: Sequence[SOSPTree],
    batch: Optional[ChangeBatch] = None,
    engine: Optional[Engine] = None,
    weighting: str = "balanced",
    priorities: Optional[Sequence[float]] = None,
    step3: str = "frontier",
    use_csr_kernels: bool = False,
    csr: Optional[CSRGraph] = None,
) -> MOSPResult:
    """Run Algorithm 2 over the (already applied) change batch.

    Parameters
    ----------
    graph:
        The updated multi-objective graph ``G_{t+1}`` (apply the batch
        with ``batch.apply_to(graph)`` first, exactly as for
        :func:`~repro.core.sosp_update.sosp_update`).
    trees:
        One SOSP tree per objective, all rooted at the same source,
        with ``trees[i].objective == i``.  Updated in place.
    batch:
        Change batch — any mix of insertions, deletions, and weight
        changes (mixed batches route Step 1 through
        :func:`~repro.core.fully_dynamic.apply_mixed_batch`); ``None``
        skips Step 1 (recombine-only mode, useful after external tree
        maintenance).
    engine:
        Execution engine shared by all steps.
    weighting, priorities:
        Ensemble weighting scheme (see
        :func:`~repro.core.ensemble.build_ensemble`).
    step3:
        Step-3 SSSP kernel on the combined graph: ``"frontier"`` (the
        default — work-efficient queue-based Bellman-Ford, matching
        the two-queue implementations the paper cites) or ``"rounds"``
        (full edge-relaxation rounds, the textbook parallel
        Bellman-Ford; identical results, different work profile).
    use_csr_kernels:
        Route every stage through the vectorised CSR kernels of
        :mod:`repro.core.kernels`: per-objective tree updates run the
        batched Step-1/Step-2 arrays path of
        :func:`~repro.core.sosp_update.sosp_update`, the ensemble is
        built with ``vectorized=True``, and (for ``step3="frontier"``)
        Step 3 runs :func:`~repro.core.kernels.frontier_bellman_ford_csr`
        on the combined graph.  Every distance (per-objective SOSP and
        combined-graph) is identical either way; where the combined
        graph admits several equally short parents — common, since its
        weights are the small integers ``k − x + 1`` — the two Step-3
        kernels may break the tie differently, yielding a different but
        equally optimal MOSP path (and hence real-weight vector) for
        the affected vertices.
    csr:
        Optional incrementally maintained
        :class:`~repro.graph.csr.CSRGraph` snapshot of ``graph``
        (``use_csr_kernels=True`` only); one snapshot is frozen from
        ``graph`` per call when omitted.  Callers maintaining it across
        batches must ``csr.apply_batch(batch)`` alongside
        ``batch.apply_to(graph)`` (``append_batch`` for insertion-only
        batches).

    Returns
    -------
    :class:`MOSPResult`

    Examples
    --------
    >>> import numpy as np
    >>> from repro.graph import DiGraph
    >>> from repro.core import SOSPTree, mosp_update
    >>> g = DiGraph(3, k=2)
    >>> _ = g.add_edge(0, 1, (1.0, 4.0)); _ = g.add_edge(1, 2, (1.0, 4.0))
    >>> _ = g.add_edge(0, 2, (4.0, 1.0))
    >>> trees = [SOSPTree.build(g, 0, objective=i) for i in range(2)]
    >>> r = mosp_update(g, trees)
    >>> r.path_to(2) in ([0, 1, 2], [0, 2])
    True
    """
    if not trees:
        raise AlgorithmError("mosp_update needs at least one SOSP tree")
    k = graph.num_objectives
    if len(trees) != k:
        raise AlgorithmError(
            f"graph has k={k} objectives but {len(trees)} trees were given"
        )
    for i, t in enumerate(trees):
        if t.objective != i:
            raise AlgorithmError(
                f"trees[{i}].objective == {t.objective}; trees must be "
                "ordered by objective"
            )
    source = trees[0].source
    eng = resolve_engine(engine)
    result = MOSPResult(
        source=source,
        parent=np.full(graph.num_vertices, NO_PARENT, dtype=np.int64),
        dist_vectors=np.full((graph.num_vertices, k), INF, dtype=DIST_DTYPE),
        ensemble=None,  # type: ignore[arg-type]
    )

    timed = _make_timed("mosp_update", result, eng)

    # ------------------------------------------------------ step 1
    if batch is not None and batch.num_changes:
        snapshot: Optional[CSRGraph] = None
        if use_csr_kernels:
            snapshot = csr if csr is not None else CSRGraph.from_digraph(graph)
        for i in range(k):
            stats, _touched = timed(
                f"sosp_update_{i}",
                lambda i=i: _update_tree_step1(
                    graph, trees[i], batch, eng,
                    use_csr_kernels=use_csr_kernels, csr=snapshot,
                ),
            )
            _record_tree_stats(result, stats)

    # ------------------------------------------------------ step 2
    ensemble = timed(
        "ensemble",
        lambda: build_ensemble(trees, engine=eng, weighting=weighting,
                               priorities=priorities,
                               vectorized=use_csr_kernels),
    )
    result.ensemble = ensemble

    # ------------------------------------------------------ step 3
    if step3 == "frontier":
        if use_csr_kernels:
            bf = lambda: kernels.frontier_bellman_ford_csr(
                ensemble.csr, source, engine=eng
            )
        else:
            bf = lambda: frontier_bellman_ford(
                ensemble.csr, source, engine=eng
            )
    elif step3 == "rounds":
        bf = lambda: parallel_bellman_ford(ensemble.csr, source, engine=eng)
    else:
        raise AlgorithmError(
            f"unknown step3 kernel {step3!r}; expected frontier | rounds"
        )
    dist_c, parent_c = timed("bellman_ford", bf)
    result.parent = parent_c

    timed("reassign", lambda: _reassign_real_weights(
        graph, source, dist_c, parent_c, result.dist_vectors, trees
    ))
    eng.charge(int(np.isfinite(dist_c).sum()))
    return result


# ----------------------------------------------------------------------
def _make_timed(prefix: str, result: MOSPResult, eng: Engine):
    """Build the pipeline-step timer shared by :func:`mosp_update` and
    :class:`~repro.core.incremental_ensemble.IncrementalMOSP`.

    Each call ``timed(key, fn)`` runs ``fn`` inside a tracer span named
    ``"<prefix>.<key>"`` and records the span's elapsed wall time in
    ``result.step_seconds[key]``; engines with a virtual clock
    additionally populate ``result.step_virtual_seconds``.
    """
    tracer = get_tracer()
    vt = getattr(eng, "virtual_time", None)

    def timed(key, fn):
        nonlocal vt
        with tracer.span(f"{prefix}.{key}") as sp:
            out = fn()
        result.step_seconds[key] = sp.elapsed
        if vt is not None:
            now = eng.virtual_time  # type: ignore[attr-defined]
            result.step_virtual_seconds[key] = now - vt
            vt = now
        return out

    return timed


def _update_tree_step1(
    graph: DiGraph,
    tree: SOSPTree,
    batch: ChangeBatch,
    eng: Engine,
    use_csr_kernels: bool = False,
    csr: Optional[CSRGraph] = None,
) -> Tuple[Optional[UpdateStats], Set[int]]:
    """Algorithm-2 Step 1 for one per-objective tree.

    Dispatches to the unified fully dynamic pipeline
    (:func:`~repro.core.fully_dynamic.apply_mixed_batch`) when the
    batch carries deletions or weight changes, otherwise to plain
    Algorithm 1 — through the CSR kernels either way when requested.
    Returns ``(stats, touched)`` where ``stats`` is the Algorithm-1
    :class:`UpdateStats` (or its mixed-pipeline subclass) and
    ``touched`` is the set of vertices whose tree entry may have
    changed.
    """
    if batch.num_deletions or batch.num_weight_changes:
        from repro.core.fully_dynamic import apply_mixed_batch

        mx = apply_mixed_batch(
            graph, tree, batch, engine=eng,
            use_csr_kernels=use_csr_kernels, csr=csr,
        )
        return mx, set(mx.touched_vertices)
    stats = sosp_update(
        graph, tree, batch, engine=eng,
        use_csr_kernels=use_csr_kernels, csr=csr,
    )
    return stats, set(stats.affected_vertices)


def _record_tree_stats(
    result: MOSPResult, stats: Optional[UpdateStats]
) -> None:
    """The single place per-tree Step-1 stats enter a result.

    Both Algorithm-2 drivers (batch and incremental) must call this
    exactly once per tree per update — the ``mosp_tree_updates_total``
    counter certifies that, and ``update_stats`` gains at most one
    entry (none when the fully dynamic path produced no insert phase).
    """
    m = get_metrics()
    if m.enabled:
        m.counter(
            "mosp_tree_updates_total",
            "per-objective tree updates (Algorithm-2 Step 1)",
        ).inc()
    if stats is not None:
        result.update_stats.append(stats)


# ----------------------------------------------------------------------
def _representative_weight(
    g: DiGraph,
    u: int,
    v: int,
    trees: Optional[Sequence[SOSPTree]] = None,
) -> FloatArray:
    """The weight vector used when re-assigning hop ``(u, v)``.

    Simple graphs (the usual case) have exactly one choice.  Among
    parallel edges the hop must be priced with an edge some per-
    objective tree actually certifies: the ensemble contains ``(u, v)``
    because ``trees[i].parent[v] == u`` for at least one objective
    ``i``, and that tree's certified edge is the parallel edge with the
    minimal ``i``-th weight component (the one its relaxations used).
    Pricing the hop with a *different* parallel edge can fabricate a
    dominated path vector even when every tree is unique, which is
    exactly the precondition of the paper's Pareto-optimality theorem.
    Among the certified candidates (or all parallels, when no tree
    owns the hop) we take the lexicographically smallest vector — a
    deterministic pick of a real edge.
    """
    parallels: List[FloatArray] = []
    for vv, eid in g.out_edges(u):
        if vv == v:
            parallels.append(g.weight(eid))
    if not parallels:
        raise AlgorithmError(
            f"combined-tree edge ({u}, {v}) does not exist in the graph"
        )
    candidates = parallels
    if trees is not None and len(parallels) > 1:
        certified = [
            min(parallels, key=lambda w: (w[t.objective], *tuple(w)))
            for t in trees
            if t.parent[v] == u
        ]
        if certified:
            candidates = certified
    return min(candidates, key=tuple)


def _reassign_real_weights(
    g: DiGraph,
    source: int,
    dist_c: FloatArray,
    parent_c: IntArray,
    out: FloatArray,
    trees: Optional[Sequence[SOSPTree]] = None,
) -> None:
    """Algorithm 2's final move: walk the combined-graph SOSP tree in
    BFS-from-root order, summing the original multi-weights.

    ``trees`` (the per-objective SOSP trees the ensemble was built
    from) disambiguates parallel edges — see
    :func:`_representative_weight`."""
    order = np.argsort(dist_c, kind="stable")  # parents precede children
    out[source] = 0.0
    for v in order:
        v = int(v)
        if v == source or not np.isfinite(dist_c[v]):
            continue
        p = int(parent_c[v])
        if p == NO_PARENT:
            continue
        out[v] = out[p] + _representative_weight(g, p, v, trees)
