"""The paper's "Probable Optimization": incremental combined-graph SOSP.

§3.2: "Initially the algorithm needs to compute the SOSP tree in the
combined graph from scratch.  Later the algorithm can use the SOSP tree
computed in E_t (at time t) and the changed edges found in the new
ensemble graph E_{t+1} to update the SOSP tree using a similar approach
proposed in Algorithm [1]."

:class:`IncrementalMOSP` keeps the whole MOSP pipeline warm across time
steps:

1. the ``k`` per-objective SOSP trees (updated by Algorithm 1);
2. the ensemble graph as a *mutable* :class:`~repro.graph.DiGraph`
   patched with the diff between consecutive ensembles;
3. the SOSP tree **on** the ensemble graph, updated by the fully
   dynamic Algorithm-1 variant instead of a fresh Bellman-Ford —
   ensemble edges appear, vanish, and change weight (their tree-count
   ``x`` moves), so the diff contains insertions and deletions.

Diff classification per ensemble edge ``(u, v)``:

=============================  =======================================
appears in the new ensemble    insertion record
vanishes                       deletion record
weight decreased (x grew)      insertion record (pure improvement)
weight increased (x shrank)    deletion + insertion records
=============================  =======================================
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.deletion import sosp_update_fulldynamic
from repro.core.ensemble import resolve_weighting, vertex_ensemble_edges
from repro.core.mosp_update import (
    MOSPResult,
    _make_timed,
    _reassign_real_weights,
    _record_tree_stats,
    _update_tree_step1,
)
from repro.core.tree import SOSPTree
from repro.dynamic.changes import ChangeBatch
from repro.errors import AlgorithmError
from repro.graph.digraph import DiGraph
from repro.parallel.api import Engine, resolve_engine
from repro.sssp.bellman_ford import frontier_bellman_ford
from repro.types import DIST_DTYPE, INF, VERTEX_DTYPE

__all__ = ["IncrementalMOSP"]


class IncrementalMOSP:
    """Warm-state MOSP maintenance across a change stream.

    Parameters
    ----------
    graph:
        The multi-objective graph; the caller keeps applying batches to
        it (``batch.apply_to(graph)``) before calling :meth:`update`,
        exactly as with :func:`~repro.core.mosp_update.mosp_update`.
    source:
        Common source of all trees.
    engine:
        Execution engine shared by every stage.
    weighting, priorities:
        Ensemble weighting scheme (fixed for the object's lifetime —
        changing the scheme would invalidate the warm ensemble tree).

    Examples
    --------
    >>> from repro.graph import DiGraph
    >>> from repro.dynamic import ChangeBatch
    >>> g = DiGraph(3, k=2)
    >>> _ = g.add_edge(0, 1, (1.0, 2.0)); _ = g.add_edge(1, 2, (1.0, 2.0))
    >>> inc = IncrementalMOSP(g, source=0)
    >>> inc.result().path_to(2)
    [0, 1, 2]
    >>> batch = ChangeBatch.insertions([(0, 2, (1.5, 1.5))])
    >>> _ = batch.apply_to(g)
    >>> inc.update(batch).path_to(2)
    [0, 2]
    """

    def __init__(
        self,
        graph: DiGraph,
        source: int,
        engine: Optional[Engine] = None,
        weighting: str = "balanced",
        priorities: Optional[Sequence[float]] = None,
    ) -> None:
        self.graph = graph
        self.source = int(source)
        self.engine = resolve_engine(engine)
        self.weighting = weighting
        self.priorities = priorities

        k = graph.num_objectives
        self._prio = resolve_weighting(weighting, priorities, k)
        self.trees: List[SOSPTree] = [
            SOSPTree.build(graph, source, objective=i) for i in range(k)
        ]
        # warm ensemble state: per-destination in-edge maps {u: w}
        self._ensemble_graph = DiGraph(graph.num_vertices, k=1)
        self._in_edges: List[Dict[int, float]] = [
            {} for _ in range(graph.num_vertices)
        ]
        self._ensemble_tree: Optional[SOSPTree] = None
        self._bootstrap()

    # ------------------------------------------------------------------
    def _bootstrap(self) -> None:
        """Initial from-scratch combined-graph SOSP (the paper's
        'initially the algorithm needs to compute ... from scratch')."""
        n = self.graph.num_vertices
        for v in range(n):
            entries = vertex_ensemble_edges(
                self.trees, v, self.weighting, self._prio
            )
            self._in_edges[v] = {u: w for u, _v, w in entries}
            for u, w in self._in_edges[v].items():
                self._ensemble_graph.add_edge(u, v, w)
        self.engine.charge(n * len(self.trees))
        dist, parent = frontier_bellman_ford(
            self._ensemble_graph, self.source, engine=self.engine
        )
        self._ensemble_tree = SOSPTree(self.source, dist, parent)

    # ------------------------------------------------------------------
    def _diff_and_patch(self, dirty: Optional[set]) -> ChangeBatch:
        """Recompute ensemble in-edges for the dirty vertices only,
        patch the warm ensemble graph, and return the change batch
        that seeds the ensemble tree repair.

        ``dirty=None`` means "everything" (used when the caller did not
        run Step 1 through this object, so churn is unknown).
        """
        vertices = range(self.graph.num_vertices) if dirty is None else dirty
        ins: List[Tuple[int, int, Tuple[float]]] = []
        dels: List[Tuple[int, int]] = []

        def patch_vertex(v: int):
            old = self._in_edges[v]
            new = {
                u: w
                for u, _v, w in vertex_ensemble_edges(
                    self.trees, v, self.weighting, self._prio
                )
            }
            local_ins = []
            local_dels = []
            for u, w in new.items():
                prev = old.get(u)
                if prev is None:
                    local_ins.append((u, v, (w,)))
                elif w != prev:
                    local_dels.append(None if w < prev else (u, v))
                    local_ins.append((u, v, (w,)))
            for u in old:
                if u not in new:
                    local_dels.append((u, v))
            return v, new, local_ins, [d for d in local_dels if d]

        results = self.engine.parallel_for(
            sorted(vertices), patch_vertex,
            work_fn=lambda v, r: len(self.trees),
        )
        for v, new, local_ins, local_dels in results:
            old = self._in_edges[v]
            for u in set(old) - set(new):
                self._ensemble_graph.remove_edge(u, v)
            for u, w in new.items():
                prev = old.get(u)
                if prev is None:
                    self._ensemble_graph.add_edge(u, v, w)
                elif w != prev:
                    self._ensemble_graph.remove_edge(u, v)
                    self._ensemble_graph.add_edge(u, v, w)
            self._in_edges[v] = new
            ins.extend(local_ins)
            dels.extend(local_dels)
        self.engine.charge(len(ins) + len(dels))
        return ChangeBatch.concat(
            ChangeBatch.deletions(dels, k=1),
            ChangeBatch.insertions(ins)
            if ins
            else ChangeBatch.deletions([], k=1),
        )

    # ------------------------------------------------------------------
    def update(self, batch: Optional[ChangeBatch] = None) -> MOSPResult:
        """Advance the warm state past one (already applied) batch.

        Runs Algorithm 1 on each per-objective tree, patches the
        ensemble graph with the diff, and repairs the ensemble SOSP
        tree with the fully dynamic update — no from-scratch
        Bellman-Ford.  Returns a
        :class:`~repro.core.mosp_update.MOSPResult` with the same step
        timers as :func:`~repro.core.mosp_update.mosp_update` (the
        Bellman-Ford slot reports the incremental repair instead).
        """
        if self._ensemble_tree is None:  # pragma: no cover - defensive
            raise AlgorithmError("IncrementalMOSP not bootstrapped")
        n = self.graph.num_vertices
        if n != self._ensemble_graph.num_vertices:
            raise AlgorithmError(
                "graph grew vertices; rebuild IncrementalMOSP"
            )
        k = self.graph.num_objectives
        result = MOSPResult(
            source=self.source,
            parent=np.full(n, -1, dtype=VERTEX_DTYPE),
            dist_vectors=np.full((n, k), INF, dtype=DIST_DTYPE),
            ensemble=None,  # type: ignore[arg-type]
        )
        eng = self.engine
        timed = _make_timed("incremental_mosp", result, eng)

        dirty: Optional[set] = None
        if batch is not None and batch.num_changes:
            dirty = set()
            for i in range(k):
                stats, touched = timed(
                    f"sosp_update_{i}",
                    lambda i=i: _update_tree_step1(
                        self.graph, self.trees[i], batch, eng
                    ),
                )
                _record_tree_stats(result, stats)
                dirty |= touched
        elif batch is not None:
            dirty = set()  # provably no churn

        ens_batch = timed(
            "ensemble", lambda: self._diff_and_patch(dirty)
        )
        timed(
            "bellman_ford",
            lambda: sosp_update_fulldynamic(
                self._ensemble_graph, self._ensemble_tree, ens_batch,
                engine=eng,
            ),
        )
        timed("reassign", lambda: _reassign_real_weights(
            self.graph, self.source, self._ensemble_tree.dist,
            self._ensemble_tree.parent, result.dist_vectors, self.trees,
        ))
        result.parent = self._ensemble_tree.parent.copy()
        return result

    def result(self) -> MOSPResult:
        """The current MOSP state without applying a batch."""
        return self.update(batch=None)

    @property
    def ensemble_tree(self) -> SOSPTree:
        """The warm SOSP tree over the combined graph (read-only use)."""
        assert self._ensemble_tree is not None
        return self._ensemble_tree

    @property
    def ensemble_graph(self) -> DiGraph:
        """The warm combined graph (read-only use)."""
        return self._ensemble_graph
