"""Algorithm 1, Step 0: group inserted edges by destination vertex.

"At preprocessing stage all the inserted directed edges (u, v) are
grouped by the second endpoint v and stored in I[v]. ... The grouping
simply performs set insert operations (O(1) time on average), while
reading the changed edges." (§3.1)

The payoff: in Step 1 each group is processed by a single thread, so a
vertex's distance is written by exactly one thread — no races, no
convergence iterations for the batch-apply phase.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.dynamic.changes import ChangeBatch
from repro.types import FloatArray, IntArray

__all__ = ["group_by_destination"]


def group_by_destination(
    batch: ChangeBatch, objective: int = 0
) -> List[Tuple[int, IntArray, FloatArray]]:
    """Group the batch's insertion records by destination.

    Returns a list of ``(v, sources, weights)`` tuples — one group per
    distinct destination vertex ``v``, where ``sources[i]`` /
    ``weights[i]`` describe one inserted edge ``(sources[i], v)`` with
    its ``objective``-component weight.  The list is the unit of
    parallel work for Step 1: one task per group.

    Implemented as a single stable sort over the batch (numpy argsort)
    followed by boundary detection — O(b log b) with tiny constants,
    matching the paper's hash-grouping in spirit while staying
    vectorised.
    """
    src, dst, w = batch.insert_records()
    b = len(src)
    if b == 0:
        return []
    order = np.argsort(dst, kind="stable")
    dst_sorted = dst[order]
    src_sorted = src[order]
    w_sorted = w[order, objective]
    # boundaries of equal-destination runs
    cuts = np.nonzero(np.diff(dst_sorted))[0] + 1
    starts = np.concatenate(([0], cuts))
    ends = np.concatenate((cuts, [b]))
    return [
        (int(dst_sorted[s]), src_sorted[s:e], w_sorted[s:e])
        for s, e in zip(starts, ends)
    ]
