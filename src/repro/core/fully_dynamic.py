"""The unified fully dynamic SOSP pipeline for mixed change batches.

:func:`apply_mixed_batch` consumes one :class:`~repro.dynamic.changes.ChangeBatch`
interleaving insertions, deletions, and weight changes and repairs the
SOSP tree in a single invalidate / seed / propagate pass — the
SSSP-Del-style generalisation of the paper's insertion-only Algorithm 1
and of the deletion extension in :mod:`repro.core.deletion` (which is
now a thin wrapper over this module):

- **Step D — invalidate.**  A deletion or weight *raise* on a tree edge
  ``(u, v)`` strands ``v``'s entire subtree: every member's distance
  becomes ``inf`` and its parent pointer is cleared.  The dirty-root
  predicate is one-sided — ``parent[v] == u`` and the new certified
  bound ``dist[u] + min_w(u, v)`` strictly exceeds ``dist[v]`` — so
  weight *drops* on tree edges never invalidate (the old distance is
  still a valid upper bound and Step I lowers it instead).  Soundness:
  when a vertex is *not* invalidated, a live path of length
  ``≤ dist[v]`` still exists, so every descendant's stored distance
  remains a valid upper bound.
- **Step I — seed.**  One batched group relaxation
  (:func:`~repro.core.kernels.relax_batch_groups`) over the union of
  (a) one stimulus per distinct inserted / weight-changed ``(u, v)``
  pair, normalised to the minimum *live* weight so duplicate and
  self-cancelling edits of one edge collapse to the truth, and (b) the
  whole connection boundary of the dirty set — every in-edge of every
  invalidated vertex, gathered vectorised through the reverse CSR
  (:func:`~repro.core.kernels.gather_in_edges_csr`) on the kernel path.
  Dirty predecessors contribute ``inf`` candidates, which the segmented
  argmin ignores.
- **Step 2/3 — propagate.**  The ordinary Algorithm-1 Step-2 frontier
  repairs insertion-affected and deletion-orphaned vertices together:
  :func:`~repro.core.kernels.propagate_csr` on the kernel path, the
  pointer-chasing reference loop otherwise.  Completeness: every edge
  violated after the batch either was seeded directly (inserted /
  re-weighted edges, dirty boundaries) or flows out of a vertex the
  pipeline improved — and improved vertices are marked and their
  out-neighbours re-enter the frontier, so the fixpoint equals a
  from-scratch recompute (certified by the differential-oracle suite).

The pipeline runs unchanged on every engine backend — serial, threads,
processes, shared-memory slabs, simulated, and their checked wrappers —
because all mutation happens inside the existing slab kernels.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

import numpy as np

import repro.core.kernels as kernels
from repro.core.sosp_update import UpdateStats, propagate_reference
from repro.core.tree import SOSPTree
from repro.dynamic.changes import ChangeBatch
from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.parallel.api import Engine, resolve_engine
from repro.parallel.atomics import OwnershipTracker, resolve_tracker
from repro.types import DIST_DTYPE, INF, NO_PARENT, FloatArray, IntArray

__all__ = ["apply_mixed_batch", "sosp_update_mixed", "MixedUpdateStats"]


@dataclass
class MixedUpdateStats(UpdateStats):
    """Execution profile of one :func:`apply_mixed_batch` call.

    Extends :class:`~repro.core.sosp_update.UpdateStats` (so the
    propagation kernels and every stats consumer treat it uniformly;
    ``step_seconds`` keys are ``"invalidate"`` / ``"seed"`` /
    ``"propagate"`` here) with the fully dynamic phases:

    Attributes
    ----------
    dirty_roots:
        Tree edges whose deletion / weight raise cut a subtree loose.
    invalidated:
        Vertices reset to ``inf`` in Step D (subtree members).
    seed_stimuli:
        Candidate edges fed to the Step-I group relaxation (change
        stimuli plus the dirty connection boundary).
    touched_vertices:
        ``affected_vertices ∪ invalidated`` — every vertex whose tree
        entry may differ from before the call (the set ensemble diffing
        consumes; an invalidated vertex that stays disconnected changed
        to ``inf`` without ever being "affected").
    """

    dirty_roots: int = 0
    invalidated: int = 0
    seed_stimuli: int = 0
    touched_vertices: Set[int] = field(default_factory=set)


def apply_mixed_batch(
    graph: DiGraph,
    tree: SOSPTree,
    batch: ChangeBatch,
    engine: Optional[Engine] = None,
    check_ownership: bool = False,
    use_csr_kernels: bool = False,
    csr: Optional[CSRGraph] = None,
) -> MixedUpdateStats:
    """Repair ``tree`` in place after an arbitrary mixed ``batch``.

    Parameters
    ----------
    graph:
        The **updated** graph ``G_{t+1}`` — the batch must already have
        been applied (``batch.apply_to(graph)``).
    tree:
        The SOSP tree of ``G_t``; mutated into the tree of ``G_{t+1}``.
    batch:
        Any interleaving of insertion, deletion, and weight-change
        records, including duplicate and self-cancelling edits of one
        edge (stimuli are re-normalised against the live graph).
    engine:
        Execution engine (``None`` = serial); every backend family is
        supported because the pipeline reuses the Step-1/Step-2 slab
        kernels unchanged.
    check_ownership:
        Enable the single-writer-per-vertex assertion
        (:class:`~repro.parallel.atomics.OwnershipTracker`).
    use_csr_kernels:
        Route the seed and propagation through the vectorised CSR
        kernels.  Requires ``csr`` (or a fresh freeze of ``graph``) to
        reflect the batch — pair ``batch.apply_to(graph)`` with
        ``csr.apply_batch(batch)``.
    csr:
        Optional incrementally maintained snapshot for the kernel path
        (``None`` freezes ``graph`` on entry).

    Returns
    -------
    :class:`MixedUpdateStats`
    """
    if tree.num_vertices != graph.num_vertices:
        raise AlgorithmError(
            f"tree spans {tree.num_vertices} vertices, graph has "
            f"{graph.num_vertices}; rebuild or grow the tree first"
        )
    eng = resolve_engine(engine)
    # partitioned engines own the whole update loop (per-shard pools +
    # boundary exchange); wrappers forward the driver attribute
    driver = getattr(eng, "partitioned_mixed_update", None)
    if callable(driver):
        routed: MixedUpdateStats = driver(
            graph, tree, batch, csr=csr, check_ownership=check_ownership
        )
        return routed
    stats = MixedUpdateStats()
    dist = tree.dist
    parent = tree.parent
    objective = tree.objective
    n = graph.num_vertices
    marked = np.zeros(n, dtype=np.int8)
    tracker = (
        OwnershipTracker() if check_ownership else resolve_tracker(None, eng)
    )
    tracer = get_tracer()

    snapshot: Optional[CSRGraph] = None
    if use_csr_kernels:
        snapshot = csr if csr is not None else CSRGraph.from_digraph(graph)
        if snapshot.n != n:
            raise AlgorithmError(
                f"CSR snapshot spans {snapshot.n} vertices, graph has {n}"
            )
        if snapshot.num_edges != graph.num_edges:
            raise AlgorithmError(
                f"CSR snapshot has {snapshot.num_edges} edges, graph has "
                f"{graph.num_edges}: pair batch.apply_to(graph) with "
                f"snapshot.apply_batch(batch) to keep them in sync"
            )

    # ------------------------------------------------------ Step D
    with tracer.span(
        "sosp_update_mixed.invalidate",
        deletions=int(batch.num_deletions),
        weight_changes=int(batch.num_weight_changes),
    ) as sp_inv:
        dirty = _invalidate(graph, tree, batch, stats)
        if dirty:
            for v in dirty:
                dist[v] = INF
                parent[v] = NO_PARENT
            eng.charge(len(dirty))
        sp_inv.set(invalidated=len(dirty))
    stats.step_seconds["invalidate"] = sp_inv.elapsed
    stats.touched_vertices |= dirty

    # ------------------------------------------------------ Step I
    with tracer.span("sosp_update_mixed.seed") as sp_seed:
        s_src, s_dst, s_w = _gather_stimuli(
            graph, batch, dirty, objective, snapshot
        )
        stats.seed_stimuli = int(s_src.size)
        affected_arr, scanned = kernels.relax_batch_groups(
            s_src, s_dst, s_w, dist, parent, marked,
            engine=eng, tracker=tracker,
        )
        sp_seed.set(stimuli=stats.seed_stimuli,
                    affected=int(affected_arr.size))
    stats.step_seconds["seed"] = sp_seed.elapsed
    stats.step1_passes = 1
    stats.relaxations += scanned
    stats.affected_initial = int(affected_arr.size)
    stats.affected_total = int(affected_arr.size)
    stats.affected_vertices.update(int(v) for v in affected_arr)

    # ------------------------------------------------------ Step 2/3
    with tracer.span(
        "sosp_update_mixed.propagate",
        kernel="csr" if use_csr_kernels else "python",
    ) as sp_prop:
        if use_csr_kernels:
            assert snapshot is not None
            kernels.propagate_csr(
                snapshot, dist, parent, marked, affected_arr,
                objective=objective, engine=eng, stats=stats,
                tracker=tracker,
            )
        else:
            propagate_reference(
                graph, objective, dist, parent, marked,
                [int(v) for v in affected_arr], eng, stats, tracker,
            )
    stats.step_seconds["propagate"] = sp_prop.elapsed
    stats.touched_vertices |= stats.affected_vertices
    _publish_mixed_stats(stats, batch)
    return stats


#: Public alias: the paper-style entry-point name.
sosp_update_mixed = apply_mixed_batch


# ----------------------------------------------------------------------
def _invalidate(
    graph: DiGraph,
    tree: SOSPTree,
    batch: ChangeBatch,
    stats: MixedUpdateStats,
) -> Set[int]:
    """Step D: collect the dirty set without mutating the tree yet.

    A deletion or weight-change record ``(u, v)`` cuts ``v`` loose iff
    ``v``'s parent pointer crosses that edge and no surviving parallel
    ``(u, v)`` edge certifies a distance ``≤ dist[v]``.  The test is
    strictly one-sided (``nd > dist[v]``): a weight drop on the parent
    edge leaves ``dist[v]`` a valid upper bound, and the matching Step-I
    stimulus lowers it without the invalidation churn.
    """
    dist = tree.dist
    parent = tree.parent
    objective = tree.objective

    del_src, del_dst = batch.delete_records()
    wc_src, wc_dst, _wc_w = batch.weight_change_records()
    pairs = zip(
        np.concatenate((del_src, wc_src)).tolist(),
        np.concatenate((del_dst, wc_dst)).tolist(),
    )
    roots: List[int] = []
    seen_roots: Set[int] = set()
    for u, v in pairs:
        if v in seen_roots or parent[v] != u or not np.isfinite(dist[v]):
            continue
        nd = dist[u] + graph.min_weight_between(u, v, objective)
        if nd > dist[v] and not np.isclose(nd, dist[v]):
            roots.append(v)
            seen_roots.add(v)
    stats.dirty_roots = len(roots)
    if not roots:
        return set()

    children = tree.children_lists()
    dirty: Set[int] = set()
    queue = deque(roots)
    while queue:
        v = queue.popleft()
        if v in dirty:
            continue
        dirty.add(v)
        queue.extend(children[v])
    stats.invalidated = len(dirty)
    return dirty


def _gather_stimuli(
    graph: DiGraph,
    batch: ChangeBatch,
    dirty: Set[int],
    objective: int,
    snapshot: Optional[CSRGraph],
) -> Tuple[IntArray, IntArray, FloatArray]:
    """Assemble the Step-I candidate edges ``(src, dst, weight)``.

    Change stimuli come first (one per distinct inserted /
    weight-changed pair, normalised to the minimum live weight so the
    batch's record order and duplicates cannot disagree with the
    graph), then the dirty boundary — every in-edge of every
    invalidated vertex.  Order is deterministic, and duplicates between
    the two groups are harmless: the group relaxation reduces each
    destination with one segmented argmin.
    """
    stim_src: List[int] = []
    stim_dst: List[int] = []
    stim_w: List[float] = []
    seen: Set[Tuple[int, int]] = set()
    ins_src, ins_dst, _ins_w = batch.insert_records()
    wc_src, wc_dst, _wc_w = batch.weight_change_records()
    for u, v in zip(
        np.concatenate((ins_src, wc_src)).tolist(),
        np.concatenate((ins_dst, wc_dst)).tolist(),
    ):
        if (u, v) in seen:
            continue
        seen.add((u, v))
        live = graph.min_weight_between(u, v, objective)
        if np.isfinite(live):
            stim_src.append(u)
            stim_dst.append(v)
            stim_w.append(float(live))

    src = np.asarray(stim_src, dtype=np.int64)
    dst = np.asarray(stim_dst, dtype=np.int64)
    w = np.asarray(stim_w, dtype=DIST_DTYPE)
    if dirty:
        dirty_arr = np.asarray(sorted(dirty), dtype=np.int64)
        if snapshot is not None:
            b_src, b_dst, b_w = kernels.gather_in_edges_csr(
                snapshot, dirty_arr, objective
            )
        else:
            weights_col = graph.weight_column(objective)
            bs: List[int] = []
            bd: List[int] = []
            bw: List[float] = []
            for v in dirty_arr.tolist():
                for u, eid in graph.in_edges(v):
                    bs.append(u)
                    bd.append(v)
                    bw.append(float(weights_col[eid]))
            b_src = np.asarray(bs, dtype=np.int64)
            b_dst = np.asarray(bd, dtype=np.int64)
            b_w = np.asarray(bw, dtype=DIST_DTYPE)
        src = np.concatenate((src, b_src))
        dst = np.concatenate((dst, b_dst))
        w = np.concatenate((w, b_w))
    return src, dst, w


def _publish_mixed_stats(stats: MixedUpdateStats, batch: ChangeBatch) -> None:
    """Publish one finished mixed update to the metrics registry."""
    m = get_metrics()
    if not m.enabled:
        return
    m.counter("mixed_updates_total", "fully dynamic mixed updates").inc()
    m.counter(
        "mixed_invalidated_total",
        "vertices invalidated by deleted/raised tree edges",
    ).inc(stats.invalidated)
    m.counter(
        "mixed_relaxations_total",
        "edges examined across seed + propagation",
    ).inc(stats.relaxations)
    m.histogram("mixed_batch_size", "records per mixed batch").observe(
        batch.num_changes
    )
    m.histogram(
        "mixed_seed_stimuli", "Step-I candidate edges per update"
    ).observe(stats.seed_stimuli)
    m.histogram(
        "mixed_propagate_iterations", "frontier waves per mixed update"
    ).observe(stats.iterations)
