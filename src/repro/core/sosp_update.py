"""Algorithm 1: parallel SOSP update for batches of edge insertions.

The three steps of the paper, §3.1:

- **Step 0 — Preprocessing** (:func:`repro.core.grouping.group_by_destination`):
  inserted edges are grouped by destination, making each destination a
  unit of parallel work owned by exactly one task.
- **Step 1 — Process changed edges**: one task per group relaxes the
  group's inserted edges against the current tree; an improved vertex
  is *marked* affected.  Grouping means no two tasks write one vertex,
  so a single pass suffices — this is the paper's improvement over the
  iterate-until-consistent approach of prior work ([17]), which
  :func:`sosp_update` can emulate with ``use_grouping=False`` for the
  ablation benchmark.
- **Step 2 — Propagate the update**: while the affected set is
  non-empty, gather the unique out-neighbours ``N`` of the affected
  vertices; in parallel each ``v ∈ N`` scans its *marked* predecessors
  and relaxes; improved vertices become the next affected set.

The function mutates the tree in place and leaves it a correct SSSP
solution of the updated graph (certified property-based in the test
suite).  The update touches only the affected region — its cost is
O(|ΔE| + affected subgraph), not O(|E|).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

import repro.core.kernels as kernels
from repro.core.affected import gather_unique_neighbors
from repro.core.grouping import group_by_destination
from repro.core.tree import SOSPTree
from repro.dynamic.changes import ChangeBatch
from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.parallel.api import Engine, resolve_engine
from repro.parallel.atomics import OwnershipTracker, resolve_tracker

__all__ = ["sosp_update", "UpdateStats", "propagate_reference"]


@dataclass
class UpdateStats:
    """Execution profile of one :func:`sosp_update` call.

    Attributes
    ----------
    affected_initial:
        Vertices improved directly by inserted edges (Step 1).
    affected_total:
        Total improvement events across both steps (a vertex improved
        twice counts twice).
    step1_passes:
        Passes over the inserted edges; 1 with grouping, possibly more
        with ``use_grouping=False`` (the emulated prior-work mode).
    iterations:
        Step 2 frontier iterations.
    relaxations:
        Edges examined across the whole update (the work-unit count).
    frontier_sizes:
        ``|N|`` per Step 2 iteration.
    affected_vertices:
        The distinct vertices whose distance (and hence possibly
        parent) changed — consumed by
        :class:`~repro.core.incremental_ensemble.IncrementalMOSP` to
        diff only the churned part of the ensemble.
    step_seconds:
        Wall-clock seconds per step: ``"step1"`` (changed-edge
        application) and ``"step2"`` (frontier propagation) — the
        old-vs-new kernel comparison the benchmarks report.
    """

    affected_initial: int = 0
    affected_total: int = 0
    step1_passes: int = 0
    iterations: int = 0
    relaxations: int = 0
    frontier_sizes: List[int] = field(default_factory=list)
    affected_vertices: set = field(default_factory=set)
    step_seconds: Dict[str, float] = field(default_factory=dict)


def sosp_update(
    graph: DiGraph,
    tree: SOSPTree,
    batch: ChangeBatch,
    engine: Optional[Engine] = None,
    use_grouping: bool = True,
    check_ownership: bool = False,
    use_csr_kernels: bool = False,
    csr: Optional[CSRGraph] = None,
) -> UpdateStats:
    """Update ``tree`` in place after the insertions in ``batch``.

    Parameters
    ----------
    graph:
        The **updated** graph ``G_{t+1}`` — the batch must already have
        been applied (``batch.apply_to(graph)``); Step 2 needs the new
        edges visible in the adjacency.
    tree:
        The SOSP tree of ``G_t``; mutated into the tree of ``G_{t+1}``.
    batch:
        The change batch.  Only insertion records are processed; a
        batch containing deletions raises
        :class:`~repro.errors.AlgorithmError` (use
        :func:`repro.core.deletion.sosp_update_fulldynamic`).
    engine:
        Execution engine (``None`` = serial).  One Step-1 group / one
        Step-2 frontier vertex per task, matching the paper's OpenMP
        scheduling.
    use_grouping:
        ``False`` switches Step 1 to the prior-work emulation: plain
        edge-parallel passes repeated until no distance changes
        (measured by ``UpdateStats.step1_passes``).  Results are
        identical; only the work profile differs.
    check_ownership:
        Enable the vertex-ownership assertion
        (:class:`~repro.parallel.atomics.OwnershipTracker`) — O(1) per
        write; used by the test suite.
    use_csr_kernels:
        ``True`` routes Steps 1–2 through the vectorised CSR kernels
        (:mod:`repro.core.kernels`): batched group relaxation plus
        whole-frontier reverse-CSR gathers instead of per-edge Python.
        Results are identical (certified by the differential-oracle
        suite); requires ``use_grouping=True``.
    csr:
        Optional CSR snapshot of the **updated** graph for the kernel
        path.  Pass a snapshot maintained incrementally with
        :meth:`~repro.graph.csr.CSRGraph.append_batch` to amortise the
        freeze across batches; ``None`` freezes ``graph`` on entry
        (one O(|E|) pass).  Ignored when ``use_csr_kernels=False``.

    Returns
    -------
    :class:`UpdateStats`
    """
    if batch.num_deletions or batch.num_weight_changes:
        raise AlgorithmError(
            "sosp_update handles insertions only; use "
            "sosp_update_fulldynamic (or apply_mixed_batch) for batches "
            "with deletions or weight changes"
        )
    if tree.num_vertices != graph.num_vertices:
        raise AlgorithmError(
            f"tree spans {tree.num_vertices} vertices, graph has "
            f"{graph.num_vertices}; rebuild or grow the tree first"
        )
    if use_csr_kernels and not use_grouping:
        raise AlgorithmError(
            "use_csr_kernels implies destination grouping; the "
            "ungrouped prior-work emulation has no vectorised variant"
        )
    eng = resolve_engine(engine)
    # partitioned engines own the whole update loop (per-shard pools +
    # boundary exchange); wrappers forward the driver attribute
    driver = getattr(eng, "partitioned_sosp_update", None)
    if callable(driver):
        routed: UpdateStats = driver(
            graph, tree, batch, csr=csr, check_ownership=check_ownership
        )
        return routed
    stats = UpdateStats()
    dist = tree.dist
    parent = tree.parent
    objective = tree.objective
    n = graph.num_vertices
    marked = np.zeros(n, dtype=np.int8)
    # explicit opt-in wins; otherwise a checked engine (resolve_engine
    # checked=True / REPRO_CHECKED_ENGINES=1) supplies its own tracker
    tracker = (
        OwnershipTracker() if check_ownership else resolve_tracker(None, eng)
    )

    # normalise the insertion records against the *live* graph: a batch
    # may insert and delete the same (u, v) edge (mixed batches apply
    # in record order), so the only trustworthy stimulus per record is
    # the smallest live (u, v) weight — achievable by construction and
    # at least as good as whatever the record carried.  Records whose
    # endpoints have no surviving edge are dropped.
    batch = _normalize_against_graph(graph, batch, objective)

    tracer = get_tracer()
    batch_size = int(batch.num_insertions)

    if use_csr_kernels:
        snapshot = csr if csr is not None else CSRGraph.from_digraph(graph)
        if snapshot.n != n:
            raise AlgorithmError(
                f"CSR snapshot spans {snapshot.n} vertices, graph has {n}"
            )
        if snapshot.num_edges != graph.num_edges:
            raise AlgorithmError(
                f"CSR snapshot has {snapshot.num_edges} edges, graph has "
                f"{graph.num_edges}: pair batch.apply_to(graph) with "
                f"snapshot.append_batch(batch) to keep them in sync"
            )
        src, dst, w_all = batch.insert_records()
        with tracer.span(
            "sosp_update.step1", kernel="csr", batch_size=batch_size
        ) as sp1:
            affected_arr, scanned = kernels.relax_batch_groups(
                src, dst, w_all[:, objective], dist, parent, marked,
                engine=eng, tracker=tracker,
            )
        stats.step_seconds["step1"] = sp1.elapsed
        stats.step1_passes = 1
        stats.relaxations += scanned
        stats.affected_initial = int(affected_arr.size)
        stats.affected_total = int(affected_arr.size)
        stats.affected_vertices.update(affected_arr.tolist())
        with tracer.span("sosp_update.step2", kernel="csr") as sp2:
            kernels.propagate_csr(
                snapshot, dist, parent, marked, affected_arr,
                objective=objective, engine=eng, stats=stats,
                tracker=tracker,
            )
        stats.step_seconds["step2"] = sp2.elapsed
        _publish_stats(stats, batch_size)
        return stats

    # ------------------------------------------------------ step 0 + 1
    with tracer.span(
        "sosp_update.step1",
        kernel="python",
        grouped=use_grouping,
        batch_size=batch_size,
    ) as sp1:
        if use_grouping:
            affected = _step1_grouped(
                batch, objective, dist, parent, marked, eng, stats, tracker
            )
        else:
            affected = _step1_ungrouped(
                batch, objective, dist, parent, marked, eng, stats
            )
    stats.step_seconds["step1"] = sp1.elapsed
    stats.affected_initial = len(affected)
    stats.affected_total = len(affected)
    stats.affected_vertices.update(affected)

    # ---------------------------------------------------------- step 2
    with tracer.span("sosp_update.step2", kernel="python") as sp2:
        propagate_reference(
            graph, objective, dist, parent, marked, affected,
            eng, stats, tracker,
        )
    stats.step_seconds["step2"] = sp2.elapsed
    _publish_stats(stats, batch_size)
    return stats


def propagate_reference(
    graph: DiGraph,
    objective: int,
    dist: np.ndarray,
    parent: np.ndarray,
    marked: np.ndarray,
    affected: List[int],
    eng: Engine,
    stats: "UpdateStats",
    tracker: Optional[OwnershipTracker],
) -> None:
    """Step 2 on the pointer-chasing reference path.

    The python twin of :func:`~repro.core.kernels.propagate_csr`:
    while the affected set is non-empty, each unique out-neighbour
    pulls its *marked* predecessors and relaxes.  Shared by
    :func:`sosp_update` and the fully dynamic pipeline
    (:func:`~repro.core.fully_dynamic.apply_mixed_batch`); ``stats`` is
    duck-typed exactly as ``propagate_csr`` requires.
    """
    weights_col = graph.weight_column(objective)
    while affected:
        if tracker is not None:
            tracker.next_superstep()
        frontier = gather_unique_neighbors(graph, affected)
        stats.frontier_sizes.append(len(frontier))
        stats.iterations += 1

        def relax(task_item):
            task_id, v = task_item
            best = dist[v]
            best_u = -1
            scanned = 0
            for u, eid in graph.in_edges(v):
                scanned += 1
                if marked[u] != 1:
                    continue
                nd = dist[u] + weights_col[eid]
                if nd < best:
                    best = nd
                    best_u = u
            if best_u >= 0:
                if tracker is not None:
                    tracker.record_write(v, task_id)
                dist[v] = best
                parent[v] = best_u
                marked[v] = 1
                return v, scanned
            return -1, scanned

        results = eng.parallel_for(
            list(enumerate(frontier)),
            relax,
            work_fn=lambda item, r: max(1, r[1]),
        )
        stats.relaxations += sum(r[1] for r in results)
        affected = [v for v, _ in results if v >= 0]
        stats.affected_total += len(affected)
        stats.affected_vertices.update(affected)


def _publish_stats(stats: UpdateStats, batch_size: int) -> None:
    """Publish one finished Algorithm-1 run to the metrics registry.

    Exactly one call per :func:`sosp_update` invocation, fed from the
    already-accumulated :class:`UpdateStats` — the inner loops never
    touch the registry, so the disabled-registry path costs a single
    attribute check here.
    """
    m = get_metrics()
    if not m.enabled:
        return
    m.counter("sosp_updates_total", "Algorithm-1 invocations").inc()
    m.counter("sosp_relaxations_total", "edges examined").inc(
        stats.relaxations
    )
    m.counter("sosp_step1_passes_total",
              "Step-1 passes over inserted edges").inc(stats.step1_passes)
    m.counter("sosp_improvements_total",
              "distance improvements applied").inc(stats.affected_total)
    m.histogram("sosp_batch_size", "insertions per batch").observe(
        batch_size
    )
    m.histogram("sosp_step2_iterations",
                "Step-2 frontier waves per update").observe(stats.iterations)
    h = m.histogram("sosp_frontier_size", "|N| per Step-2 iteration")
    for size in stats.frontier_sizes:
        h.observe(size)


# ----------------------------------------------------------------------
def _normalize_against_graph(
    graph: DiGraph, batch: ChangeBatch, objective: int
) -> ChangeBatch:
    """Rewrite insertion records to the minimum live ``(u, v)`` weight
    for ``objective``; drop records with no surviving edge.

    Cost O(Σ out-degree(u)) over the batch — negligible next to the
    update itself — and only runs when the batch could disagree with
    the graph (records whose weight matches a live edge pass through
    untouched in the common case)."""
    src, dst, w = batch.insert_records()
    if len(src) == 0:
        return batch
    keep_src: List[int] = []
    keep_dst: List[int] = []
    keep_w: List[np.ndarray] = []
    k = batch.num_objectives
    for i in range(len(src)):
        u, v = int(src[i]), int(dst[i])
        live = graph.min_weight_between(u, v, objective)
        if not np.isfinite(live):
            continue  # edge no longer exists (deleted later in batch)
        row = w[i].copy()
        row[objective] = live
        keep_src.append(u)
        keep_dst.append(v)
        keep_w.append(row)
    if not keep_src:
        return ChangeBatch.insertions([])
    return ChangeBatch(
        np.asarray(keep_src),
        np.asarray(keep_dst),
        np.vstack(keep_w),
        np.ones(len(keep_src), dtype=bool),
    )


def _step1_grouped(
    batch, objective, dist, parent, marked, eng, stats, tracker
) -> List[int]:
    """Steps 0+1 with destination grouping: one pass, race-free."""
    groups = group_by_destination(batch, objective)

    def process_group(task_item):
        task_id, (v, srcs, ws) = task_item
        best = dist[v]
        best_u = -1
        for u, w in zip(srcs, ws):
            nd = dist[u] + w
            if nd < best:
                best = nd
                best_u = int(u)
        if best_u >= 0:
            if tracker is not None:
                tracker.record_write(v, task_id)
            dist[v] = best
            parent[v] = best_u
            marked[v] = 1
            return v, len(srcs)
        return -1, len(srcs)

    results = eng.parallel_for(
        list(enumerate(groups)),
        process_group,
        work_fn=lambda item, r: max(1, r[1]),
    )
    stats.step1_passes = 1
    stats.relaxations += sum(r[1] for r in results)
    return [v for v, _ in results if v >= 0]


def _step1_ungrouped(
    batch, objective, dist, parent, marked, eng, stats
) -> List[int]:
    """Prior-work emulation ([17]): edge-parallel passes to a fixpoint.

    Without grouping, several inserted edges can target one vertex, so
    a single edge-parallel pass may apply a non-minimal update (in the
    real racy implementation) or require re-checking (here): passes
    repeat until no distance changes, and every pass rescans the whole
    batch — the extra work the paper's grouping removes.
    """
    src, dst, w_all = batch.insert_records()
    w = w_all[:, objective]
    b = len(src)
    affected_set = set()
    chunk = max(1, b // 64)
    spans = [(lo, min(lo + chunk, b)) for lo in range(0, b, chunk)]
    while True:
        stats.step1_passes += 1

        def scan(span):
            lo, hi = span
            proposals = []
            for i in range(lo, hi):
                u, v = int(src[i]), int(dst[i])
                nd = dist[u] + w[i]
                if nd < dist[v]:
                    proposals.append((v, nd, u))
            return proposals

        parts = eng.parallel_for(
            spans, scan, work_fn=lambda s, r: s[1] - s[0]
        )
        stats.relaxations += b
        changed = False
        # sequential merge stands in for the atomic-min the racy
        # implementation relies on
        for proposals in parts:
            for v, nd, u in proposals:
                if nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    marked[v] = 1
                    affected_set.add(v)
                    changed = True
            eng.charge(len(proposals))
        if not changed:
            break
    return sorted(affected_set)
