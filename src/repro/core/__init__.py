"""The paper's contribution: parallel SOSP and MOSP update algorithms.

- :class:`~repro.core.tree.SOSPTree` — the single-objective shortest
  path tree (parent + distance arrays), the paper's central data
  structure.
- :func:`~repro.core.sosp_update.sosp_update` — **Algorithm 1**:
  parallel incremental SSSP update with destination grouping (Step 0),
  race-free batch application (Step 1), and iterative affected-frontier
  propagation (Step 2).
- :func:`~repro.core.fully_dynamic.apply_mixed_batch` (alias
  ``sosp_update_mixed``) — the unified fully dynamic pipeline for
  mixed insertion / deletion / weight-change batches: one invalidate /
  seed / propagate pass over the same slab kernels.
  :func:`~repro.core.deletion.sosp_update_fulldynamic` — the edge
  deletion extension sketched in the paper's conclusion — is now a
  compatibility wrapper over it.
- :func:`~repro.core.ensemble.build_ensemble` — **Algorithm 2 Step 2**:
  the combined graph with ``k − x + 1`` (or priority) edge weights.
- :func:`~repro.core.mosp_update.mosp_update` — **Algorithm 2**: the
  single-MOSP update heuristic (update trees → ensemble → parallel
  Bellman-Ford → real-weight reassignment).
- :mod:`repro.core.kernels` — NumPy-vectorised CSR kernels behind the
  ``use_csr_kernels=True`` fast path of both update entry points:
  batched Step-1 group relaxation, reverse-CSR Step-2 frontier
  propagation, and the combined-graph frontier Bellman-Ford, all
  certified against the reference path by the differential test
  harness.
"""

from repro.core.ensemble import EnsembleGraph, build_ensemble
from repro.core.fully_dynamic import (
    MixedUpdateStats,
    apply_mixed_batch,
    sosp_update_mixed,
)
from repro.core.incremental_ensemble import IncrementalMOSP
from repro.core.mosp_update import MOSPResult, mosp_update
from repro.core.deletion import sosp_update_fulldynamic
from repro.core.sosp_update import UpdateStats, sosp_update
from repro.core.tree import SOSPTree

__all__ = [
    "SOSPTree",
    "sosp_update",
    "sosp_update_fulldynamic",
    "apply_mixed_batch",
    "sosp_update_mixed",
    "MixedUpdateStats",
    "UpdateStats",
    "build_ensemble",
    "EnsembleGraph",
    "mosp_update",
    "MOSPResult",
    "IncrementalMOSP",
]
