"""Fully dynamic SOSP update: the edge-deletion extension.

The paper's conclusion: "While our paper primarily focuses on
incremental graphs, specifically edge insertions, the algorithm has the
potential to be adapted for edge deletions.  We plan to address this in
upcoming work."  This module is that adaptation, following the standard
two-phase scheme of the authors' earlier SSSP-update framework
(Khanda et al., TPDS 2022, the paper's [17]):

1. **Invalidate** — a deleted edge that is a *tree* edge disconnects
   its child's whole subtree from the tree: every vertex of the
   subtree gets distance ``inf`` and is marked *dirty*.  Deleted
   non-tree edges change nothing.
2. **Repair** — dirty vertices are relaxed against *all* their
   non-dirty predecessors (the connection boundary), then improvements
   propagate exactly like Algorithm 1 Step 2.  Insertions in the same
   batch are handled by the normal grouped Step 1 beforehand, so one
   call processes an arbitrary mixed batch.

The repair phase relaxes from any finite-distance predecessor (not
only *marked* ones) while dirty vertices remain, because a dirty
vertex's new best path may enter from a part of the graph the update
never touched.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

import numpy as np

from repro.core.sosp_update import UpdateStats, sosp_update
from repro.core.tree import SOSPTree
from repro.dynamic.changes import ChangeBatch
from repro.errors import AlgorithmError
from repro.graph.digraph import DiGraph
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.parallel.api import Engine, resolve_engine
from repro.parallel.atomics import resolve_tracker
from repro.types import INF, NO_PARENT

__all__ = ["sosp_update_fulldynamic", "FullDynamicStats"]


@dataclass
class FullDynamicStats:
    """Profile of one fully dynamic update.

    ``insert_stats`` is the embedded Algorithm-1 run for the batch's
    insertions (``None`` when the batch had none).
    ``touched_vertices`` collects every vertex whose distance or parent
    may have changed (invalidated ∪ repaired ∪ insertion-affected) —
    consumers like
    :class:`~repro.core.incremental_ensemble.IncrementalMOSP` use it to
    scope their ensemble diffs.
    """

    invalidated: int = 0
    repair_iterations: int = 0
    repair_relaxations: int = 0
    insert_stats: Optional[UpdateStats] = None
    touched_vertices: Set[int] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.touched_vertices is None:
            self.touched_vertices = set()


def sosp_update_fulldynamic(
    graph: DiGraph,
    tree: SOSPTree,
    batch: ChangeBatch,
    engine: Optional[Engine] = None,
) -> FullDynamicStats:
    """Update ``tree`` in place for a mixed insertion/deletion batch.

    ``graph`` must already reflect the batch
    (``batch.apply_to(graph)``).  Deletions are processed first
    (invalidate + repair), then insertions run through the normal
    grouped :func:`~repro.core.sosp_update.sosp_update`.

    Returns :class:`FullDynamicStats`.
    """
    if tree.num_vertices != graph.num_vertices:
        raise AlgorithmError(
            f"tree spans {tree.num_vertices} vertices, graph has "
            f"{graph.num_vertices}"
        )
    eng = resolve_engine(engine)
    stats = FullDynamicStats()

    del_src, del_dst = batch.delete_records()
    if len(del_src):
        (
            stats.invalidated,
            stats.repair_iterations,
            stats.repair_relaxations,
            touched,
        ) = _process_deletions(graph, tree, del_src, del_dst, eng)
        stats.touched_vertices |= touched

    ins = batch.only_insertions()
    if ins.num_insertions:
        stats.insert_stats = sosp_update(graph, tree, ins, engine=eng)
        stats.touched_vertices |= stats.insert_stats.affected_vertices

    m = get_metrics()
    if m.enabled:
        m.counter(
            "deletion_invalidated_total",
            "vertices invalidated by deleted tree edges",
        ).inc(stats.invalidated)
        m.counter(
            "deletion_repair_relaxations_total",
            "edges examined during deletion repair",
        ).inc(stats.repair_relaxations)
        m.histogram(
            "deletion_repair_iterations",
            "repair frontier waves per fully dynamic update",
        ).observe(stats.repair_iterations)
    return stats


# ----------------------------------------------------------------------
def _process_deletions(
    graph: DiGraph, tree: SOSPTree, del_src, del_dst, eng: Engine
) -> Tuple[int, int, int, Set[int]]:
    """Invalidate subtrees cut by deleted tree edges, then repair.

    Returns ``(invalidated, iterations, relaxations, touched)``."""
    dist = tree.dist
    parent = tree.parent
    objective = tree.objective
    tracer = get_tracer()

    with tracer.span(
        "sosp_update_fulldynamic.invalidate", deletions=int(len(del_src))
    ) as sp_inv:
        # phase 1: find roots of disconnected subtrees.  A deletion
        # (u, v) matters iff v's parent pointer crossed that edge and no
        # surviving parallel (u, v) edge can still certify v's distance.
        dirty_roots: List[int] = []
        for u, v in zip(del_src.tolist(), del_dst.tolist()):
            if parent[v] == u and np.isfinite(dist[v]):
                w = graph.min_weight_between(u, v, objective)
                if not np.isclose(dist[u] + w, dist[v]):
                    dirty_roots.append(v)

        if not dirty_roots:
            sp_inv.set(invalidated=0)
            return 0, 0, 0, set()

        # collect entire subtrees below the dirty roots (BFS over tree
        # children); every member's distance is now unreliable
        children = tree.children_lists()
        dirty: Set[int] = set()
        queue = deque(dirty_roots)
        while queue:
            v = queue.popleft()
            if v in dirty:
                continue
            dirty.add(v)
            queue.extend(children[v])
        for v in dirty:
            dist[v] = INF
            parent[v] = NO_PARENT
        eng.charge(len(dirty))
        sp_inv.set(invalidated=len(dirty))

    # phase 2: repair.  Dirty vertices relax against *any* finite
    # predecessor; improvements then propagate to out-neighbours.  Each
    # frontier vertex is owned by exactly one task (the frontier is a
    # set), the same single-writer argument as Algorithm 1 Step 2.
    weights_col = graph.weight_column(objective)
    tracker = resolve_tracker(None, eng)
    frontier = sorted(dirty)
    touched: Set[int] = set(dirty)
    iterations = 0
    relaxations = 0
    with tracer.span("sosp_update_fulldynamic.repair") as sp_rep:
        while frontier:
            iterations += 1
            if tracker is not None:
                tracker.next_superstep()

            def relax(task_item: Tuple[int, int]) -> Tuple[int, int]:
                task_id, v = task_item
                best = dist[v]
                best_u = -1
                scanned = 0
                for u, eid in graph.in_edges(v):
                    scanned += 1
                    nd = dist[u] + weights_col[eid]
                    if nd < best:
                        best = nd
                        best_u = u
                if best_u >= 0:
                    if tracker is not None:
                        tracker.record_write(v, task_id)
                    dist[v] = best
                    parent[v] = best_u
                    return v, scanned
                return -1, scanned

            results = eng.parallel_for(
                list(enumerate(frontier)),
                relax,
                work_fn=lambda item, r: max(1, r[1]),
            )
            relaxations += sum(r[1] for r in results)
            improved = [v for v, _ in results if v >= 0]
            touched.update(improved)
            # next frontier: out-neighbours of improved vertices that
            # could still get better, plus remaining unreached dirty
            # vertices
            nxt: Set[int] = set()
            for u in improved:
                for v, eid in graph.out_edges(u):
                    if dist[u] + weights_col[eid] < dist[v]:
                        nxt.add(v)
            for v in dirty:
                if not np.isfinite(dist[v]) and any(
                    np.isfinite(dist[u]) for u, _ in graph.in_edges(v)
                ):
                    # still disconnected but now has a finite
                    # predecessor: retry (guaranteed to improve)
                    nxt.add(v)
            if not improved:
                # nothing on the frontier was improvable, and any vertex
                # in nxt would have been improved had it been improvable
                # — the repair has reached a fixpoint
                break
            frontier = sorted(nxt)
        sp_rep.set(iterations=iterations, relaxations=relaxations)
    return len(dirty), iterations, relaxations, touched
