"""Fully dynamic SOSP update: the edge-deletion extension.

The paper's conclusion: "While our paper primarily focuses on
incremental graphs, specifically edge insertions, the algorithm has the
potential to be adapted for edge deletions.  We plan to address this in
upcoming work."  This module is that adaptation's historical entry
point.  The actual invalidate / seed / propagate pipeline now lives in
:mod:`repro.core.fully_dynamic` — one pass that also consumes weight
changes — and :func:`sosp_update_fulldynamic` is kept as a thin
compatibility wrapper that re-expresses a
:class:`~repro.core.fully_dynamic.MixedUpdateStats` in the original
:class:`FullDynamicStats` vocabulary (invalidate + repair phases, plus
the embedded insertion-phase stats consumers still unpack).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

from repro.core.fully_dynamic import apply_mixed_batch
from repro.core.sosp_update import UpdateStats
from repro.core.tree import SOSPTree
from repro.dynamic.changes import ChangeBatch
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.obs.metrics import get_metrics
from repro.parallel.api import Engine

__all__ = ["sosp_update_fulldynamic", "FullDynamicStats"]


@dataclass
class FullDynamicStats:
    """Profile of one fully dynamic update.

    ``insert_stats`` is the Algorithm-1-shaped profile of the batch's
    insertion work (``None`` when the batch had none) — since the
    unified pipeline seeds and propagates insertions and repairs in one
    pass, it is the pipeline's own
    :class:`~repro.core.fully_dynamic.MixedUpdateStats` (an
    :class:`~repro.core.sosp_update.UpdateStats` subclass).
    ``touched_vertices`` collects every vertex whose distance or parent
    may have changed (invalidated ∪ repaired ∪ insertion-affected) —
    consumers like
    :class:`~repro.core.incremental_ensemble.IncrementalMOSP` use it to
    scope their ensemble diffs.
    """

    invalidated: int = 0
    repair_iterations: int = 0
    repair_relaxations: int = 0
    insert_stats: Optional[UpdateStats] = None
    touched_vertices: Set[int] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.touched_vertices is None:
            self.touched_vertices = set()


def sosp_update_fulldynamic(
    graph: DiGraph,
    tree: SOSPTree,
    batch: ChangeBatch,
    engine: Optional[Engine] = None,
    use_csr_kernels: bool = False,
    csr: Optional[CSRGraph] = None,
) -> FullDynamicStats:
    """Update ``tree`` in place for a mixed batch (compat wrapper).

    ``graph`` must already reflect the batch
    (``batch.apply_to(graph)``).  Delegates to
    :func:`~repro.core.fully_dynamic.apply_mixed_batch` — deletions and
    weight raises invalidate, then insertions, weight drops, and the
    dirty boundary seed one shared propagation — and reports the
    result in the original two-phase vocabulary.

    Returns :class:`FullDynamicStats`.
    """
    mx = apply_mixed_batch(
        graph, tree, batch, engine=engine,
        use_csr_kernels=use_csr_kernels, csr=csr,
    )
    stats = FullDynamicStats(
        invalidated=mx.invalidated,
        repair_iterations=mx.iterations,
        repair_relaxations=mx.relaxations,
        insert_stats=mx if batch.num_insertions else None,
        touched_vertices=set(mx.touched_vertices),
    )

    m = get_metrics()
    if m.enabled:
        m.counter(
            "deletion_invalidated_total",
            "vertices invalidated by deleted tree edges",
        ).inc(stats.invalidated)
        m.counter(
            "deletion_repair_relaxations_total",
            "edges examined during deletion repair",
        ).inc(stats.repair_relaxations)
        m.histogram(
            "deletion_repair_iterations",
            "repair frontier waves per fully dynamic update",
        ).observe(stats.repair_iterations)
    return stats
