"""Algorithm 1, Step 2 machinery: the affected-vertex frontier.

"Step 2 first gathers all unique neighbors of all the affected
vertices in a vector N.  Then the vertices v ∈ N are assigned to
parallel threads where each thread checks for the predecessors which
are already marked as affected." (§3.1)

Collecting *unique* out-neighbours before the parallel relaxation is
what restores vertex ownership in the propagation phase: each v ∈ N is
owned by one task, which scans v's in-edges — so again no two tasks
write the same distance.

Two implementations of the gather: the original pointer-chasing walk
over a :class:`~repro.graph.digraph.DiGraph`, and a vectorised variant
over a :class:`~repro.graph.csr.CSRGraph` snapshot that slices the
forward CSR for all affected vertices at once (used by the batched
kernels in :mod:`repro.core.kernels`).  They return the same *set*; the
CSR variant returns it sorted rather than in first-seen order, which
the fixpoint iteration is insensitive to.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.types import IntArray

__all__ = ["gather_unique_neighbors", "gather_unique_neighbors_csr"]


def gather_unique_neighbors(
    g: DiGraph, affected: Iterable[int]
) -> List[int]:
    """Unique out-neighbours of all ``affected`` vertices (Alg. 1 l.15-17).

    Order is deterministic (first-seen order over the affected list),
    which keeps the whole update deterministic under the serial and
    simulated engines.
    """
    seen = set()
    out: List[int] = []
    for u in affected:
        for v, _eid in g.out_edges(u):
            if v not in seen:
                seen.add(v)
                out.append(v)
    return out


def gather_unique_neighbors_csr(
    csr: CSRGraph, affected: IntArray
) -> IntArray:
    """Vectorised unique-out-neighbour gather over a CSR snapshot.

    Slices the forward CSR for every affected vertex in one shot (plus
    a mask over the incremental COO tail) and deduplicates with
    ``np.unique`` — O(Σ out-degree) array work, no per-edge Python.
    Returns a **sorted** int array.
    """
    affected = np.asarray(affected, dtype=np.int64)
    if affected.size == 0:
        return np.empty(0, dtype=np.int64)
    starts = csr.indptr[affected].astype(np.int64)
    ends = csr.indptr[affected + 1].astype(np.int64)
    deg = ends - starts
    total = int(deg.sum())
    if total:
        offsets = np.concatenate(([0], np.cumsum(deg)[:-1]))
        idx = np.arange(total, dtype=np.int64) + np.repeat(
            starts - offsets, deg
        )
        base = csr.indices[idx]
    else:
        base = np.empty(0, dtype=np.int64)
    if csr.num_tail_edges:
        hit = np.isin(csr.tail_src, affected)
        base = np.concatenate((base, csr.tail_dst[hit]))
    return np.unique(base).astype(np.int64)
