"""Algorithm 1, Step 2 machinery: the affected-vertex frontier.

"Step 2 first gathers all unique neighbors of all the affected
vertices in a vector N.  Then the vertices v ∈ N are assigned to
parallel threads where each thread checks for the predecessors which
are already marked as affected." (§3.1)

Collecting *unique* out-neighbours before the parallel relaxation is
what restores vertex ownership in the propagation phase: each v ∈ N is
owned by one task, which scans v's in-edges — so again no two tasks
write the same distance.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.graph.digraph import DiGraph

__all__ = ["gather_unique_neighbors"]


def gather_unique_neighbors(
    g: DiGraph, affected: Iterable[int]
) -> List[int]:
    """Unique out-neighbours of all ``affected`` vertices (Alg. 1 l.15-17).

    Order is deterministic (first-seen order over the affected list),
    which keeps the whole update deterministic under the serial and
    simulated engines.
    """
    seen = set()
    out: List[int] = []
    for u in affected:
        for v, _eid in g.out_edges(u):
            if v not in seen:
                seen.add(v)
                out.append(v)
    return out
