"""Algorithm 2, Step 2: the combined (ensemble) graph.

"The algorithm first creates an ensemble graph E by considering all the
edges from the SOSP trees T_i ∀i = 1..k.  If an edge e ∈ E appears in x
number of SOSP trees, then the balanced approach assigns edge weight
(k − x + 1) to that edge.  This approach assigns less weight to edges
that appear in more SOSP trees while assigning more weight to uncommon
edges." (§3.2)

Implementation mirrors §4: "we directly use the parent-child
relationship in the tree structure to find the edges.  We assign a
single thread to each vertex to compare its parents among all the SOSP
trees" — one task per vertex counts how many trees share each parent
edge, and a reduction gathers the weighted edge list.

Weighting schemes
-----------------
``balanced``   ``k − x + 1`` (the paper's default).
``priority``   an edge contributed by tree ``T_i`` gets weight
               inversely proportional to objective ``i``'s priority
               (the paper's prioritised variant); an edge in several
               trees takes its smallest weight.
``unit``       every ensemble edge weighs 1 (the Theorem 1 setting, and
               the control arm of the weighting ablation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.kernels import _publish, _supports_slab_plant
from repro.core.tree import SOSPTree
from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph
from repro.parallel.api import (
    Engine,
    SlabTask,
    parallel_for_slabs,
    resolve_engine,
)
from repro.types import (
    DIST_DTYPE,
    NO_PARENT,
    VERTEX_DTYPE,
    FloatArray,
    WeightVector,
)

__all__ = ["build_ensemble", "EnsembleGraph", "vertex_ensemble_edges",
           "resolve_weighting"]


def resolve_weighting(
    weighting: str, priorities: Optional[WeightVector], k: int
) -> Optional[FloatArray]:
    """Validate the weighting scheme; return the priorities array (or
    ``None`` for non-priority schemes)."""
    if weighting not in ("balanced", "priority", "unit"):
        raise AlgorithmError(
            f"unknown weighting {weighting!r}; "
            "expected balanced | priority | unit"
        )
    if weighting != "priority":
        return None
    if priorities is None:
        raise AlgorithmError("priority weighting requires priorities")
    prio = np.asarray(priorities, dtype=DIST_DTYPE)
    if prio.shape != (k,) or np.any(prio <= 0):
        raise AlgorithmError(
            f"priorities must be {k} positive values, got {priorities!r}"
        )
    return prio


def vertex_ensemble_edges(
    trees: Sequence["SOSPTree"],
    v: int,
    weighting: str = "balanced",
    prio: Optional[FloatArray] = None,
) -> List[Tuple[int, int, float]]:
    """The combined-graph in-edges of vertex ``v``: compare ``v``'s
    parents across all trees (the paper's per-vertex task, §4) and
    weigh each distinct parent edge by the scheme.

    ``prio`` is the pre-validated priorities array from
    :func:`resolve_weighting` (``None`` for balanced/unit).
    """
    k = len(trees)
    found: Dict[int, Tuple[int, float]] = {}
    for i in range(k):
        t = trees[i]
        p = int(t.parent[v])
        if p == NO_PARENT or not np.isfinite(t.dist[v]):
            continue
        pw = (1.0 / prio[i]) if prio is not None else 0.0
        if p in found:
            count, best = found[p]
            found[p] = (count + 1, min(best, pw))
        else:
            found[p] = (1, pw)
    out: List[Tuple[int, int, float]] = []
    for p, (cnt, pw) in found.items():
        if weighting == "balanced":
            w = float(k - cnt + 1)
        elif weighting == "unit":
            w = 1.0
        else:
            w = pw
        out.append((p, v, w))
    return out


@dataclass
class EnsembleGraph:
    """The combined graph plus its bookkeeping.

    Attributes
    ----------
    csr:
        Single-objective :class:`~repro.graph.csr.CSRGraph` over the
        original vertex set, containing every SOSP-tree edge once with
        its scheme weight.
    occurrences:
        ``{(u, v): x}`` — how many trees contain each edge (the ``x``
        of the ``k − x + 1`` formula), kept for tests and ablations.
    num_trees:
        ``k``, the number of trees merged.
    """

    csr: CSRGraph
    occurrences: Dict[Tuple[int, int], int]
    num_trees: int


def _ensemble_slab(
    arrays, params, lo: int, hi: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Slab kernel of the vectorised parent comparison (read-only).

    Consumes the stacked ``(k, n)`` parent/dist matrices through the
    slab-kernel signature, so the shm backend dispatches it by
    reference over planted arrays while every other engine runs the
    same body as a closure.  Emits the slab's deduplicated
    ``(dst, src, weight, count)`` quadruple sorted by vertex.
    """
    parents = arrays["ens.parents"]
    dists = arrays["ens.dists"]
    k, n = parents.shape
    valid = (parents[:, lo:hi] != NO_PARENT) & np.isfinite(dists[:, lo:hi])
    ti, vo = np.nonzero(valid)
    if ti.size == 0:
        e = np.empty(0, dtype=np.int64)
        return e, e, np.empty(0, dtype=DIST_DTYPE), e
    v = vo + lo
    p = parents[ti, v]
    key = v * n + p  # v-major, parent-minor pair key
    order = np.argsort(key, kind="stable")
    key_s = key[order]
    cuts = np.flatnonzero(np.diff(key_s)) + 1
    seg = np.concatenate(([0], cuts, [key_s.size]))
    uniq = key_s[seg[:-1]]
    cnt = np.diff(seg)
    weighting = params["weighting"]
    if weighting == "balanced":
        w = (k - cnt + 1).astype(DIST_DTYPE)
    elif weighting == "unit":
        w = np.ones(uniq.size, dtype=DIST_DTYPE)
    else:
        pw = arrays["ens.inv_prio"][ti[order]]
        w = np.minimum.reduceat(pw, seg[:-1])
    # key = v*n + p, so parent (edge source) is the remainder
    return uniq % n, uniq // n, w, cnt


def _ensemble_edges_vectorized(
    trees: Sequence[SOSPTree],
    weighting: str,
    prio,
    eng: Engine,
):
    """Array path of the per-vertex parent comparison.

    Stacks the ``(k, n)`` parent/dist matrices, covers the vertex range
    with engine slabs (:func:`~repro.parallel.api.parallel_for_slabs`),
    and inside each slab deduplicates the valid ``(v, parent)`` pairs
    with one sort + segment count.  Pairs are emitted sorted by ``v``
    within each slab, and slabs are concatenated in order, so the
    emission order is ``v``-ascending overall — the same order the
    per-vertex loop produces, which makes the frozen CSR arrays
    byte-identical between the two paths.
    """
    k = len(trees)
    n = trees[0].num_vertices
    parents = np.stack([t.parent for t in trees]).astype(np.int64)
    dists = np.stack([t.dist for t in trees])
    inv_prio = (1.0 / prio) if prio is not None else None

    planted = _supports_slab_plant(eng)
    arrays: Dict[str, np.ndarray] = {}
    _publish(eng, planted, arrays, "ens.parents", parents)
    _publish(eng, planted, arrays, "ens.dists", dists)
    names = ["ens.parents", "ens.dists"]
    params = {"weighting": weighting}
    if inv_prio is not None:
        _publish(eng, planted, arrays, "ens.inv_prio",
                 np.ascontiguousarray(inv_prio, dtype=DIST_DTYPE))
        names.append("ens.inv_prio")
    task = (
        SlabTask(ref="repro.core.ensemble:_ensemble_slab",
                 arrays=tuple(names), params=params,
                 writes=())  # read-only kernel: no recovery snapshot
        if planted
        else None
    )

    def run(lo: int, hi: int):
        return _ensemble_slab(arrays, params, lo, hi)

    results = parallel_for_slabs(
        eng, n, run, work_fn=lambda span, r: k * (span[1] - span[0]),
        task=task,
    )
    if not results:
        e = np.empty(0, dtype=np.int64)
        return e, e, e.astype(DIST_DTYPE), e
    return tuple(
        np.concatenate([r[i] for r in results]) for i in range(4)
    )


def build_ensemble(
    trees: Sequence[SOSPTree],
    engine: Optional[Engine] = None,
    weighting: str = "balanced",
    priorities: Optional[Sequence[float]] = None,
    vectorized: bool = False,
) -> EnsembleGraph:
    """Merge the per-objective SOSP trees into the combined graph.

    Parameters
    ----------
    trees:
        The ``k`` updated SOSP trees (same source, same vertex count).
    engine:
        Execution engine; the per-vertex parent comparison is one
        parallel superstep (one task per vertex), as in the paper's
        OpenMP custom-reduction implementation.
    weighting:
        ``"balanced"`` | ``"priority"`` | ``"unit"`` (see module
        docstring).
    priorities:
        Required for ``"priority"``: positive per-objective priorities;
        higher priority ⇒ lower ensemble weight ⇒ more likely chosen.
    vectorized:
        Use the batched array path
        (:func:`_ensemble_edges_vectorized`) instead of one Python task
        per vertex.  Both paths produce identical
        :class:`EnsembleGraph` contents (same CSR arrays, same
        occurrence counts).

    Returns
    -------
    :class:`EnsembleGraph`
    """
    if not trees:
        raise AlgorithmError("need at least one SOSP tree")
    k = len(trees)
    n = trees[0].num_vertices
    source = trees[0].source
    for t in trees:
        if t.num_vertices != n:
            raise AlgorithmError("trees span different vertex counts")
        if t.source != source:
            raise AlgorithmError(
                f"trees have different sources ({t.source} != {source})"
            )
    prio = resolve_weighting(weighting, priorities, k)
    eng = resolve_engine(engine)

    if vectorized:
        e_src, e_dst, e_w, e_cnt = _ensemble_edges_vectorized(
            trees, weighting, prio, eng
        )
        eng.charge(len(e_src))
        occurrences = {
            (int(p), int(v)): int(c)
            for p, v, c in zip(e_src, e_dst, e_cnt)
        }
        csr = CSRGraph(
            n,
            e_src.astype(VERTEX_DTYPE),
            e_dst.astype(VERTEX_DTYPE),
            e_w.astype(DIST_DTYPE).reshape(-1, 1),
        )
        return EnsembleGraph(csr=csr, occurrences=occurrences, num_trees=k)

    per_vertex = eng.parallel_for(
        list(range(n)),
        lambda v: vertex_ensemble_edges(trees, v, weighting, prio),
        work_fn=lambda v, r: k,
    )

    src: List[int] = []
    dst: List[int] = []
    w: List[float] = []
    occurrences: Dict[Tuple[int, int], int] = {}
    for rows in per_vertex:
        for p, v, weight in rows:
            # recover the occurrence count from the balanced formula
            # independently of the active scheme
            cnt = sum(
                1 for t in trees
                if int(t.parent[v]) == p and np.isfinite(t.dist[v])
            )
            occurrences[(p, v)] = cnt
            src.append(p)
            dst.append(v)
            w.append(weight)
    eng.charge(len(src))

    csr = CSRGraph(
        n,
        np.asarray(src, dtype=VERTEX_DTYPE),
        np.asarray(dst, dtype=VERTEX_DTYPE),
        np.asarray(w, dtype=DIST_DTYPE).reshape(-1, 1),
    )
    return EnsembleGraph(csr=csr, occurrences=occurrences, num_trees=k)
