"""The SOSP tree: parent + distance arrays.

"We store the SOSP tree as a parent-child relationship among the
vertices.  Each element of the SOSP tree contains the Parent vertex,
and Distance from the source." (§4)

:class:`SOSPTree` is exactly that pair of arrays plus the source and
objective it was computed for.  It is the mutable state that
:func:`~repro.core.sosp_update.sosp_update` updates in place.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

from repro.errors import NotReachableError, VertexError
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.sssp.recompute import recompute_sssp
from repro.sssp.verify import certify_sssp
from repro.types import NO_PARENT, BoolArray, FloatArray, IntArray

__all__ = ["SOSPTree"]


class SOSPTree:
    """A single-objective shortest-path tree rooted at ``source``.

    Attributes
    ----------
    source:
        Root vertex.
    objective:
        Which objective of the graph's weight vectors this tree
        minimises.
    dist:
        ``(n,)`` float64 — shortest known distance per vertex
        (``inf`` = unreachable).
    parent:
        ``(n,)`` int64 — predecessor per vertex (``-1`` for the source
        and unreachable vertices).

    Examples
    --------
    >>> from repro.graph import DiGraph
    >>> g = DiGraph.from_edge_list(3, [(0, 1, 2.0), (1, 2, 2.0)])
    >>> t = SOSPTree.build(g, source=0)
    >>> t.dist.tolist()
    [0.0, 2.0, 4.0]
    >>> t.path_to(2)
    [0, 1, 2]
    """

    __slots__ = ("source", "objective", "dist", "parent")

    def __init__(
        self, source: int, dist: FloatArray, parent: IntArray,
        objective: int = 0,
    ) -> None:
        self.source = int(source)
        self.objective = int(objective)
        self.dist = np.asarray(dist, dtype=np.float64)
        self.parent = np.asarray(parent, dtype=np.int64)
        if self.dist.shape != self.parent.shape:
            raise VertexError(
                len(self.parent), len(self.dist), "dist/parent length mismatch"
            )

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: Union[DiGraph, CSRGraph],
        source: int,
        objective: int = 0,
        algorithm: str = "dijkstra",
    ) -> "SOSPTree":
        """Compute the tree from scratch with a static SSSP solver."""
        dist, parent = recompute_sssp(graph, source, objective, algorithm)
        return cls(source, dist, parent, objective)

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices the tree spans (including unreachable)."""
        return len(self.dist)

    def copy(self) -> "SOSPTree":
        """Independent deep copy."""
        return SOSPTree(
            self.source, self.dist.copy(), self.parent.copy(), self.objective
        )

    def reachable_mask(self) -> BoolArray:
        """Boolean mask of vertices with finite distance."""
        return np.isfinite(self.dist)

    def path_to(self, v: int) -> List[int]:
        """The tree path ``source → v``.

        Raises :class:`NotReachableError` when ``v`` is unreachable.
        """
        if not 0 <= v < self.num_vertices:
            raise VertexError(v, self.num_vertices, "path_to")
        if not np.isfinite(self.dist[v]):
            raise NotReachableError(self.source, v)
        path = [v]
        seen = {v}
        while path[-1] != self.source:
            p = int(self.parent[path[-1]])
            if p == NO_PARENT or p in seen:
                raise NotReachableError(self.source, v)
            path.append(p)
            seen.add(p)
        path.reverse()
        return path

    def tree_edges(self) -> List[tuple]:
        """``(parent[v], v)`` for every reachable non-source vertex."""
        out = []
        for v in range(self.num_vertices):
            p = int(self.parent[v])
            if v != self.source and p != NO_PARENT and np.isfinite(self.dist[v]):
                out.append((p, v))
        return out

    def children_lists(self) -> List[List[int]]:
        """Adjacency of the tree itself: ``children[p]`` lists the
        vertices whose parent is ``p`` (used by the deletion phase)."""
        children: List[List[int]] = [[] for _ in range(self.num_vertices)]
        for v in range(self.num_vertices):
            p = int(self.parent[v])
            if p != NO_PARENT and v != self.source:
                children[p].append(v)
        return children

    def certify(self, graph: Union[DiGraph, CSRGraph]) -> None:
        """Raise unless this tree is a correct SSSP solution for
        ``graph`` (see :func:`repro.sssp.verify.certify_sssp`)."""
        certify_sssp(graph, self.source, self.dist, self.parent,
                     self.objective)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        reach = int(np.isfinite(self.dist).sum())
        return (
            f"SOSPTree(source={self.source}, objective={self.objective}, "
            f"n={self.num_vertices}, reachable={reach})"
        )
